// Cross-evaluator oracle: the paper's central claim that every physical
// pattern algorithm computes the same operator semantics (Section 4.1
// bindings, root-to-leaf lexical order) is checked dynamically by running
// the same pattern — or whole plan — through all six algorithms and
// asserting identical ordered results. The "Demythization" comparison
// (PAPERS.md) shows holistic vs. binary evaluators are exactly where
// silent divergence hides; this oracle turns such divergence into a
// reported counterexample instead of a wrong answer.
#ifndef XQTP_ANALYSIS_CROSS_CHECK_H_
#define XQTP_ANALYSIS_CROSS_CHECK_H_

#include <vector>

#include "algebra/ops.h"
#include "common/status.h"
#include "core/ast.h"
#include "exec/evaluator.h"
#include "exec/pattern_eval.h"
#include "pattern/tree_pattern.h"

namespace xqtp::analysis {

/// The algorithms the oracle exercises: all six physical pattern
/// algorithms. kCostBased is excluded — it delegates to one of these.
const std::vector<exec::PatternAlgo>& CrossCheckAlgos();

/// Item equality as the differential oracles need it: Item::operator==
/// except that two NaN doubles agree — fn:number turns every witness
/// where its argument is absent into NaN, and IEEE NaN != NaN would make
/// identical before/after forms "diverge".
bool ItemsAgree(const xdm::Item& a, const xdm::Item& b);

/// Evaluates `tp` over `context` with every algorithm and compares the
/// binding rows against the nested-loop reference. Returns Internal on
/// the first divergence, naming the algorithm, the pattern, and the first
/// differing row index.
[[nodiscard]]
Status CrossCheckPattern(const pattern::TreePattern& tp,
                         const xdm::Sequence& context,
                         const StringInterner& interner);

/// Whole-pipeline differential check for one compiled query under fixed
/// global bindings.
struct CrossCheckInput {
  /// The rewritten Core expression — the semantics reference (optional).
  const core::CoreExpr* reference = nullptr;
  /// The unoptimized plan (optional).
  const algebra::Op* unoptimized = nullptr;
  /// The optimized plan; required. When it contains TupleTreePattern
  /// operators it is evaluated once per algorithm.
  const algebra::Op* optimized = nullptr;
};

/// Runs every route (Core interpreter, unoptimized plan, optimized plan
/// x each pattern algorithm) and compares all results against the first
/// available route. Two erroring routes agree regardless of message.
/// Returns Internal naming the diverging route on the first mismatch.
[[nodiscard]]
Status CrossCheck(const CrossCheckInput& in, const core::VarTable& vars,
                  const exec::Bindings& bindings);

}  // namespace xqtp::analysis

#endif  // XQTP_ANALYSIS_CROSS_CHECK_H_
