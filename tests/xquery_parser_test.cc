#include <gtest/gtest.h>

#include "xquery/parser.h"

namespace xqtp::xquery {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  ExprPtr MustParse(const std::string& q) {
    auto res = ParseQuery(q, &interner_);
    EXPECT_TRUE(res.ok()) << q << " -> " << res.status().ToString();
    return res.ok() ? std::move(res).value() : nullptr;
  }
  std::string RoundTrip(const std::string& q) {
    ExprPtr e = MustParse(q);
    return e ? ToString(*e, interner_) : "<parse error>";
  }
  StringInterner interner_;
};

TEST_F(ParserTest, SimplePath) {
  ExprPtr e = MustParse("$d//person[emailaddress]/name");
  ASSERT_TRUE(e);
  EXPECT_EQ(e->kind, ExprKind::kPath);
  EXPECT_FALSE(e->double_slash);
  const Expr& lhs = *e->child0;
  EXPECT_EQ(lhs.kind, ExprKind::kPath);
  EXPECT_TRUE(lhs.double_slash);
  EXPECT_EQ(lhs.child0->kind, ExprKind::kVarRef);
  EXPECT_EQ(lhs.child0->var_name, "d");
  EXPECT_EQ(lhs.child1->kind, ExprKind::kStep);
  EXPECT_EQ(lhs.child1->predicates.size(), 1u);
}

TEST_F(ParserTest, ExplicitAxes) {
  ExprPtr e = MustParse("$input/desc::t01[child::t02]/child::t03");
  ASSERT_TRUE(e);
  EXPECT_EQ(RoundTrip("$input/descendant::a/child::b"),
            "$input/descendant::a/child::b");
  // "desc" is accepted as an alias for descendant (paper's QE syntax).
  EXPECT_EQ(RoundTrip("$input/desc::t01"), "$input/descendant::t01");
}

TEST_F(ParserTest, AbbreviatedSteps) {
  EXPECT_EQ(RoundTrip("$d/a/@id"), "$d/child::a/attribute::id");
  EXPECT_EQ(RoundTrip("$d/*"), "$d/child::*");
  EXPECT_EQ(RoundTrip("$d/node()"), "$d/child::node()");
  EXPECT_EQ(RoundTrip("$d/text()"), "$d/child::text()");
}

TEST_F(ParserTest, Flwor) {
  ExprPtr e = MustParse(
      "for $x in $d//person where $x/emailaddress return $x/name");
  ASSERT_TRUE(e);
  ASSERT_EQ(e->kind, ExprKind::kFlwor);
  ASSERT_EQ(e->clauses.size(), 2u);
  EXPECT_EQ(e->clauses[0].kind, FlworClause::Kind::kFor);
  EXPECT_EQ(e->clauses[0].var, "x");
  EXPECT_EQ(e->clauses[1].kind, FlworClause::Kind::kWhere);
}

TEST_F(ParserTest, FlworMultipleBindingsAndAt) {
  ExprPtr e = MustParse(
      "for $x at $i in $d/a, $y in $x/b let $z := $y/c return $z");
  ASSERT_TRUE(e);
  ASSERT_EQ(e->clauses.size(), 3u);
  EXPECT_EQ(e->clauses[0].pos_var, "i");
  EXPECT_EQ(e->clauses[1].var, "y");
  EXPECT_EQ(e->clauses[2].kind, FlworClause::Kind::kLet);
}

TEST_F(ParserTest, NestedFlwor) {
  ExprPtr e = MustParse(
      "let $x := for $y in $d//person where $y/emailaddress return $y "
      "return $x/name");
  ASSERT_TRUE(e);
  EXPECT_EQ(e->kind, ExprKind::kFlwor);
  EXPECT_EQ(e->clauses[0].kind, FlworClause::Kind::kLet);
  EXPECT_EQ(e->clauses[0].expr->kind, ExprKind::kFlwor);
}

TEST_F(ParserTest, PositionalPredicates) {
  ExprPtr e = MustParse("$d//person[1]/name");
  ASSERT_TRUE(e);
  const Expr& person = *e->child0->child1;
  ASSERT_EQ(person.predicates.size(), 1u);
  EXPECT_EQ(person.predicates[0]->kind, ExprKind::kLiteral);

  e = MustParse("$d//person[position() = 1]");
  const Expr& p2 = *e->child1;
  EXPECT_EQ(p2.predicates[0]->kind, ExprKind::kCompare);
}

TEST_F(ParserTest, ComparisonsAndLogic) {
  EXPECT_EQ(RoundTrip("$d/a = \"John\""), "$d/child::a = \"John\"");
  ExprPtr e = MustParse("$d/a = 1 and $d/b != 2 or $d/c < 3");
  EXPECT_EQ(e->kind, ExprKind::kOr);
  EXPECT_EQ(e->child0->kind, ExprKind::kAnd);
}

TEST_F(ParserTest, FunctionCalls) {
  ExprPtr e = MustParse("fn:count($d//person)");
  EXPECT_EQ(e->kind, ExprKind::kFnCall);
  EXPECT_EQ(e->fn_name, "fn:count");
  ASSERT_EQ(e->args.size(), 1u);
}

TEST_F(ParserTest, SequencesAndEmpty) {
  ExprPtr e = MustParse("($d/a, $d/b)");
  EXPECT_EQ(e->kind, ExprKind::kSequence);
  EXPECT_EQ(e->items.size(), 2u);
  e = MustParse("()");
  EXPECT_EQ(e->kind, ExprKind::kSequence);
  EXPECT_TRUE(e->items.empty());
}

TEST_F(ParserTest, LeadingSlash) {
  ExprPtr e = MustParse("/t1[1]/t1[1]");
  ASSERT_TRUE(e);
  EXPECT_EQ(e->kind, ExprKind::kPath);
}

TEST_F(ParserTest, PredicateOnParenthesizedExpr) {
  ExprPtr e = MustParse("($d//person)[1]");
  ASSERT_TRUE(e);
  EXPECT_EQ(e->kind, ExprKind::kFilter);
}

TEST_F(ParserTest, Comments) {
  ExprPtr e = MustParse("(: comment (: nested :) :) $d/a");
  ASSERT_TRUE(e);
  EXPECT_EQ(e->kind, ExprKind::kPath);
}

TEST_F(ParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("for $x in", &interner_).ok());
  EXPECT_FALSE(ParseQuery("$d/", &interner_).ok());
  EXPECT_FALSE(ParseQuery("$d/a[", &interner_).ok());
  EXPECT_FALSE(ParseQuery("$d/a)", &interner_).ok());
  EXPECT_FALSE(ParseQuery("let $x = 3 return $x", &interner_).ok());
  EXPECT_FALSE(ParseQuery("", &interner_).ok());
}

}  // namespace
}  // namespace xqtp::xquery
