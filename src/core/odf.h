// ODF analysis: infers for each Core expression whether its result is
// statically known to be in document order and duplicate-free, plus an
// abstract cardinality. This is the machinery behind the paper's
// "document order rewritings" (removal of redundant ddo calls), following
// the properties of Hidders et al. [19].
#ifndef XQTP_CORE_ODF_H_
#define XQTP_CORE_ODF_H_

#include <unordered_map>

#include "core/ast.h"

namespace xqtp::core {

/// Abstract cardinality of a sequence.
enum class Card : uint8_t {
  kOne,        ///< exactly one item
  kZeroOrOne,  ///< at most one item
  kMany,       ///< unknown / possibly more than one
};

/// Synthesized order/duplicate properties. `unrelated` is the key extra
/// property from Hidders et al. [19]: no two distinct nodes of the
/// sequence stand in an ancestor-descendant relationship. Child steps
/// from an ordered, duplicate-free, *unrelated* sequence stay ordered,
/// duplicate-free and unrelated; descendant steps from such a sequence
/// stay ordered and duplicate-free but become related — which is exactly
/// why query Q5 (a child step over a descendant result, iterated by a
/// FLWOR) is not a tree pattern while Q1b is.
struct OdfProps {
  bool ordered = false;    ///< known to be in document order
  bool dup_free = false;   ///< known to contain no duplicate node
  bool unrelated = false;  ///< no two nodes are ancestor-related
  Card card = Card::kMany;

  bool OrderedDupFree() const { return ordered && dup_free; }

  static OdfProps Singleton() { return {true, true, true, Card::kOne}; }
  static OdfProps Unknown() { return {false, false, false, Card::kMany}; }
};

/// Per-variable properties environment. A variable's entry describes the
/// *item* bound to it (for for-variables, always a singleton).
using OdfEnv = std::unordered_map<VarId, OdfProps>;

/// Computes the ODF properties of `e`. Globals (absent from `env`) are
/// singleton document nodes per the engine binding contract.
OdfProps ComputeOdf(const CoreExpr& e, const VarTable& vars,
                    const OdfEnv& env);

// ---- ODF annotation cache (CoreExpr::odf_cache) ----------------------------

inline constexpr uint8_t kOdfCachePresent = 1;  ///< annotation filled in
inline constexpr uint8_t kOdfCacheOrdered = 2;  ///< derived `ordered`
inline constexpr uint8_t kOdfCacheDupFree = 4;  ///< derived `dup_free`

/// Packs the cacheable bits of `p` (with kOdfCachePresent set).
uint8_t PackOdfCache(const OdfProps& p);

/// Unpack helpers for consumers outside core (the algebra property
/// analyzer seeds its lattice from these bits across algebra::Compile).
inline bool OdfCachePresent(uint8_t cache) {
  return (cache & kOdfCachePresent) != 0;
}
inline bool OdfCacheOrdered(uint8_t cache) {
  return (cache & kOdfCachePresent) != 0 && (cache & kOdfCacheOrdered) != 0;
}
inline bool OdfCacheDupFree(uint8_t cache) {
  return (cache & kOdfCachePresent) != 0 && (cache & kOdfCacheDupFree) != 0;
}

/// Annotates every node of `e` with its derived ordered/dup_free bits
/// (CoreExpr::odf_cache), under the binding environment the node sits in.
/// analysis::VerifyCore later re-derives the properties from scratch and
/// requires every cached annotation to be no stronger — catching rewrites
/// that restructure the tree while keeping stale, too-strong annotations.
void AnnotateOdf(CoreExpr* e, const VarTable& vars);

}  // namespace xqtp::core

#endif  // XQTP_CORE_ODF_H_
