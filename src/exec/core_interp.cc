#include "exec/core_interp.h"

#include "exec/fn_lib.h"

#include <unordered_map>

#include "xdm/sequence_ops.h"
#include "xml/document.h"

namespace xqtp::exec {

namespace {

using core::CoreExpr;
using core::CoreExprPtr;
using core::CoreFn;
using core::CoreKind;
using xdm::Item;
using xdm::Sequence;

class Interp {
 public:
  Interp(const core::VarTable& vars, const Bindings& bindings)
      : vars_(vars), bindings_(bindings) {}

  Result<Sequence> Eval(const CoreExpr& e) {
    switch (e.kind) {
      case CoreKind::kVar:
        return LookupVar(e.var);
      case CoreKind::kLiteral:
        return Sequence{e.literal};
      case CoreKind::kSequence: {
        Sequence out;
        for (const CoreExprPtr& c : e.children) {
          XQTP_ASSIGN_OR_RETURN(Sequence part, Eval(*c));
          out.insert(out.end(), part.begin(), part.end());
        }
        return out;
      }
      case CoreKind::kLet: {
        XQTP_ASSIGN_OR_RETURN(Sequence binding, Eval(*e.children[0]));
        env_[e.var] = std::move(binding);
        Result<Sequence> res = Eval(*e.children[1]);
        env_.erase(e.var);
        return res;
      }
      case CoreKind::kFor: {
        XQTP_ASSIGN_OR_RETURN(Sequence seq, Eval(*e.children[0]));
        Sequence out;
        for (size_t i = 0; i < seq.size(); ++i) {
          env_[e.var] = Sequence{seq[i]};
          if (e.pos_var != core::kNoVar) {
            env_[e.pos_var] = Sequence{Item(static_cast<int64_t>(i + 1))};
          }
          if (e.where) {
            XQTP_ASSIGN_OR_RETURN(Sequence cond, Eval(*e.where));
            XQTP_ASSIGN_OR_RETURN(bool keep,
                                  xdm::EffectiveBooleanValue(cond));
            if (!keep) continue;
          }
          XQTP_ASSIGN_OR_RETURN(Sequence part, Eval(*e.children[1]));
          out.insert(out.end(), part.begin(), part.end());
        }
        env_.erase(e.var);
        if (e.pos_var != core::kNoVar) env_.erase(e.pos_var);
        return out;
      }
      case CoreKind::kIf: {
        XQTP_ASSIGN_OR_RETURN(Sequence cond, Eval(*e.children[0]));
        XQTP_ASSIGN_OR_RETURN(bool b, xdm::EffectiveBooleanValue(cond));
        return Eval(*e.children[b ? 1 : 2]);
      }
      case CoreKind::kStep: {
        XQTP_ASSIGN_OR_RETURN(Sequence ctx, LookupVar(e.var));
        Sequence out;
        for (const Item& it : ctx) {
          if (!it.IsNode()) {
            return Status::TypeError("path step applied to an atomic value");
          }
          xdm::EvalAxisStep(it.node(), e.axis, e.test, &out);
        }
        return out;
      }
      case CoreKind::kDdo: {
        XQTP_ASSIGN_OR_RETURN(Sequence in, Eval(*e.children[0]));
        return xdm::DistinctDocOrder(std::move(in));
      }
      case CoreKind::kFnCall:
        return EvalFn(e);
      case CoreKind::kTypeswitch: {
        XQTP_ASSIGN_OR_RETURN(Sequence input, Eval(*e.children[0]));
        bool numeric = input.size() == 1 && input[0].IsNumeric();
        core::VarId v = numeric ? e.case_var : e.default_var;
        const CoreExpr& branch = numeric ? *e.children[1] : *e.children[2];
        env_[v] = std::move(input);
        Result<Sequence> res = Eval(branch);
        env_.erase(v);
        return res;
      }
      case CoreKind::kCompare: {
        XQTP_ASSIGN_OR_RETURN(Sequence l, Eval(*e.children[0]));
        XQTP_ASSIGN_OR_RETURN(Sequence r, Eval(*e.children[1]));
        XQTP_ASSIGN_OR_RETURN(bool b, xdm::GeneralCompare(e.cmp_op, l, r));
        return Sequence{Item(b)};
      }
      case CoreKind::kArith: {
        XQTP_ASSIGN_OR_RETURN(Sequence l, Eval(*e.children[0]));
        XQTP_ASSIGN_OR_RETURN(Sequence r, Eval(*e.children[1]));
        return xdm::EvalArith(e.arith_op, l, r);
      }
      case CoreKind::kAnd:
      case CoreKind::kOr: {
        XQTP_ASSIGN_OR_RETURN(Sequence l, Eval(*e.children[0]));
        XQTP_ASSIGN_OR_RETURN(bool lb, xdm::EffectiveBooleanValue(l));
        if (e.kind == CoreKind::kAnd && !lb) return Sequence{Item(false)};
        if (e.kind == CoreKind::kOr && lb) return Sequence{Item(true)};
        XQTP_ASSIGN_OR_RETURN(Sequence r, Eval(*e.children[1]));
        XQTP_ASSIGN_OR_RETURN(bool rb, xdm::EffectiveBooleanValue(r));
        return Sequence{Item(rb)};
      }
    }
    return Status::Internal("unreachable core kind");
  }

 private:
  Result<Sequence> LookupVar(core::VarId v) {
    auto it = env_.find(v);
    if (it != env_.end()) return it->second;
    auto git = bindings_.find(v);
    if (git != bindings_.end()) return git->second;
    return Status::InvalidArgument("unbound variable $" + vars_.NameOf(v));
  }

  Result<Sequence> EvalFn(const CoreExpr& e) {
    std::vector<Sequence> args;
    for (const CoreExprPtr& c : e.children) {
      XQTP_ASSIGN_OR_RETURN(Sequence a, Eval(*c));
      args.push_back(std::move(a));
    }
    return ApplyCoreFn(e.fn, args);
  }

  const core::VarTable& vars_;
  const Bindings& bindings_;
  std::unordered_map<core::VarId, Sequence> env_;
};

}  // namespace

Result<Sequence> EvaluateCore(const CoreExpr& e, const core::VarTable& vars,
                              const Bindings& bindings) {
  Interp interp(vars, bindings);
  return interp.Eval(e);
}

}  // namespace xqtp::exec
