// Tests for the TagStream cursor (xml/index.h) — the skip primitive the
// staircase join's description is built on.
#include <gtest/gtest.h>

#include "xml/index.h"
#include "xml/parser.h"

namespace xqtp::xml {
namespace {

class TagStreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto res = Parse(
        "<r><a/><b><a/><a/></b><c><a/></c><a/></r>", &interner_);
    ASSERT_TRUE(res.ok());
    doc_ = std::move(res).value();
    a_ = interner_.Lookup("a");
  }

  StringInterner interner_;
  std::unique_ptr<Document> doc_;
  Symbol a_;
};

TEST_F(TagStreamTest, IteratesInDocumentOrder) {
  TagStream ts(*doc_, a_);
  EXPECT_EQ(ts.size(), 5u);
  int32_t last = -1;
  int count = 0;
  while (!ts.AtEnd()) {
    EXPECT_GT(ts.Head()->pre, last);
    last = ts.Head()->pre;
    ts.Advance();
    ++count;
  }
  EXPECT_EQ(count, 5);
  EXPECT_EQ(ts.position(), 5u);
}

TEST_F(TagStreamTest, SkipToPreAfter) {
  TagStream ts(*doc_, a_);
  const Node* b = doc_->root()->first_child->first_child->next_sibling;
  ts.SkipToPreAfter(b->pre);
  // First a strictly inside/after b.
  ASSERT_FALSE(ts.AtEnd());
  EXPECT_GT(ts.Head()->pre, b->pre);
  // Skipping backwards is a no-op (monotone cursor).
  ts.SkipToPreAfter(0);
  EXPECT_GT(ts.Head()->pre, b->pre);
}

TEST_F(TagStreamTest, SkipIntoSubtree) {
  TagStream ts(*doc_, a_);
  const Node* c = doc_->root()
                      ->first_child->first_child->next_sibling->next_sibling;
  ts.SkipIntoSubtree(c);
  ASSERT_FALSE(ts.AtEnd());
  EXPECT_TRUE(c->IsAncestorOf(*ts.Head()));
}

TEST_F(TagStreamTest, AllElementsStreamAndReset) {
  TagStream all(*doc_, kInvalidSymbol);
  EXPECT_EQ(all.size(), 8u);  // r, a, b, a, a, c, a, a
  all.SkipToPreAfter(3);
  EXPECT_GT(all.position(), 0u);
  all.Reset();
  EXPECT_EQ(all.position(), 0u);
  EXPECT_FALSE(all.AtEnd());
}

TEST_F(TagStreamTest, UnknownTagIsEmpty) {
  TagStream ts(*doc_, interner_.Intern("zzz"));
  EXPECT_TRUE(ts.AtEnd());
  EXPECT_EQ(ts.size(), 0u);
}

}  // namespace
}  // namespace xqtp::xml
