// Shredding-model benchmark (the paper's last future-work item): the
// pointer-based staircase join vs the relational staircase join over the
// shredded node table (the XPath accelerator encoding), on the Table 1
// workload. The shredded variant trades pointer chasing for columnar
// range scans — the access pattern an RDBMS-backed store would have.
#include "bench_common.h"

namespace xqtp::bench {
namespace {

struct QE {
  const char* name;
  const char* query;
};

constexpr QE kQueries[] = {
    {"QE1", "$input/desc::t01[child::t02[child::t03[child::t04]]]"},
    {"QE4", "$input/desc::t01[desc::t02[desc::t03[desc::t04]]]"},
    {"QE6", "$input/desc::t01[desc::t02[desc::t03]/desc::t04[desc::t03]]"},
    {"path", "$input//t01/t02/t03"},
};

const xml::Document& Doc() {
  return MemberDoc("member_shredded", 400000, 5, 100, 200);
}

void Register() {
  for (const QE& qe : kQueries) {
    for (exec::PatternAlgo algo :
         {exec::PatternAlgo::kStaircase, exec::PatternAlgo::kShredded}) {
      std::string name =
          std::string("Shredded/") + qe.name + "/" + AlgoTag(algo);
      std::string query = qe.query;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [query, algo](benchmark::State& state) {
            RunQueryBenchmark(state, query, Doc(), algo);
          })
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace xqtp::bench

int main(int argc, char** argv) {
  xqtp::bench::Register();
  return xqtp::bench::BenchMain(argc, argv);
}
