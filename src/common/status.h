// Status / Result error-handling primitives, in the style of Arrow and
// RocksDB: public APIs never throw; fallible operations return a Status or
// a Result<T> carrying either a value or an error description.
#ifndef XQTP_COMMON_STATUS_H_
#define XQTP_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace xqtp {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< malformed input (bad XML, bad query text)
  kNotImplemented,    ///< feature outside the supported fragment
  kTypeError,         ///< dynamic or static type error during evaluation
  kInternal,          ///< invariant violation inside the library
  kCancelled,         ///< the query's cancel token was triggered
  kDeadlineExceeded,  ///< the query ran past its monotonic deadline
  kResourceExhausted, ///< memory budget or recursion-depth limit hit
};

/// Outcome of a fallible operation: either OK or a code plus message.
/// [[nodiscard]] on the class makes ignoring ANY returned Status a
/// compiler diagnostic (an error under -Werror / the CI gate); a call
/// site that truly wants to drop one must say so with a void cast.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]]
  static Status OK() { return Status(); }
  [[nodiscard]]
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]]
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  [[nodiscard]]
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  [[nodiscard]]
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]]
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  [[nodiscard]]
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  [[nodiscard]]
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<category>: <message>", for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Modeled on arrow::Result.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}           // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {    // NOLINT(google-explicit-constructor)
    assert(!status_.ok() && "Result constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Requires ok(). Accessors assert in debug builds.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagate a non-OK Status to the caller.
#define XQTP_RETURN_NOT_OK(expr)          \
  do {                                    \
    ::xqtp::Status _st = (expr);          \
    if (!_st.ok()) return _st;            \
  } while (false)

#define XQTP_CONCAT_IMPL(a, b) a##b
#define XQTP_CONCAT(a, b) XQTP_CONCAT_IMPL(a, b)

/// Evaluate a Result<T>-returning expression; on error propagate the status,
/// otherwise move the value into `lhs` (a declaration or assignable lvalue).
///
/// The temporary holding the Result is named with __COUNTER__ (unique per
/// expansion, not per line), so two uses on one source line — and nested
/// uses in enclosing scopes — expand to distinct names: no redefinition
/// errors, no -Wshadow under -Werror. The expansion is necessarily a
/// statement sequence (a declared `lhs` must outlive the macro), so it
/// cannot be the body of a braceless `if`; use braces, which also keeps
/// the declared variable's scope explicit.
#define XQTP_ASSIGN_OR_RETURN(lhs, expr) \
  XQTP_ASSIGN_OR_RETURN_IMPL(XQTP_CONCAT(_res_, __COUNTER__), lhs, expr)

#define XQTP_ASSIGN_OR_RETURN_IMPL(result, lhs, expr) \
  auto result = (expr);                               \
  if (!result.ok()) return result.status();           \
  lhs = std::move(result).value()

}  // namespace xqtp

#endif  // XQTP_COMMON_STATUS_H_
