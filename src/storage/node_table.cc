#include "storage/node_table.h"

#include <algorithm>

#include "common/fault_injection.h"
#include "exec/exec_stats.h"
#include "exec/governor.h"
#include "xdm/sequence_ops.h"

namespace xqtp::storage {

namespace {

using pattern::PatternNode;
using pattern::PatternNodePtr;
using pattern::TreePattern;
using xml::Node;

}  // namespace

NodeTable::NodeTable(const xml::Document& doc) {
  // Rows in pre order over ALL nodes (the pre rank is dense because
  // DocumentBuilder numbers every node, attributes included).
  int64_t n = 0;
  std::vector<const Node*> by_pre;
  // The arena isn't exposed; reconstruct document order from the tree.
  std::vector<const Node*> stack{doc.root()};
  while (!stack.empty()) {
    const Node* cur = stack.back();
    stack.pop_back();
    by_pre.push_back(cur);
    for (const Node* a : cur->attributes) by_pre.push_back(a);
    std::vector<const Node*> kids;
    for (const Node* c = cur->first_child; c != nullptr;
         c = c->next_sibling) {
      kids.push_back(c);
    }
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  std::sort(by_pre.begin(), by_pre.end(),
            [](const Node* a, const Node* b) { return a->pre < b->pre; });
  n = static_cast<int64_t>(by_pre.size());
  post_.resize(static_cast<size_t>(n));
  level_.resize(static_cast<size_t>(n));
  kind_.resize(static_cast<size_t>(n));
  tag_.resize(static_cast<size_t>(n));
  parent_.resize(static_cast<size_t>(n));
  node_.resize(static_cast<size_t>(n));
  for (const Node* node : by_pre) {
    auto r = static_cast<size_t>(node->pre);
    post_[r] = node->post;
    level_[r] = static_cast<int16_t>(node->depth);
    kind_[r] = node->kind;
    tag_[r] = node->name;
    parent_[r] = node->parent == nullptr ? -1 : node->parent->pre;
    node_[r] = node;
    RowId row = node->pre;
    switch (node->kind) {
      case xml::NodeKind::kElement:
        all_elements_.push_back(row);
        tag_rows_[node->name].push_back(row);
        all_nodes_.push_back(row);
        break;
      case xml::NodeKind::kText:
        text_rows_.push_back(row);
        all_nodes_.push_back(row);
        break;
      case xml::NodeKind::kAttribute:
        attr_rows_[node->name].push_back(row);
        break;
      case xml::NodeKind::kDocument:
        all_nodes_.push_back(row);
        break;
    }
  }
}

const std::vector<RowId>& NodeTable::ElementRows(Symbol tag) const {
  auto it = tag_rows_.find(tag);
  return it == tag_rows_.end() ? empty_ : it->second;
}

const std::vector<RowId>& NodeTable::AttributeRows(Symbol name) const {
  auto it = attr_rows_.find(name);
  return it == attr_rows_.end() ? empty_ : it->second;
}

const NodeTable& NodeTable::For(const xml::Document& doc) {
  const xml::DocumentExtension* ext = doc.GetOrBuildExtension(
      [](const xml::Document& d) -> xml::DocumentExtension* {
        return new NodeTable(d);
      });
  return *static_cast<const NodeTable*>(ext);
}

namespace {

/// Relational staircase join over the table.
class ShreddedEval {
 public:
  explicit ShreddedEval(const NodeTable& table) : table_(table) {}

  /// Rows matching `q.test` reached from a row.
  const std::vector<RowId>& RowsFor(const PatternNode& q) const {
    static const std::vector<RowId> kEmpty;
    if (q.axis == Axis::kAttribute) {
      if (q.test.kind == NodeTestKind::kName) {
        return table_.AttributeRows(q.test.name);
      }
      return kEmpty;
    }
    switch (q.test.kind) {
      case NodeTestKind::kName:
        return table_.ElementRows(q.test.name);
      case NodeTestKind::kAnyName:
        return table_.AllElementRows();
      case NodeTestKind::kText:
        return table_.TextRows();
      case NodeTestKind::kAnyNode:
        return table_.AllNodeRows();
    }
    return table_.AllNodeRows();
  }

  bool RowMatches(RowId r, const PatternNode& q) const {
    bool principal_attr = q.axis == Axis::kAttribute;
    switch (q.test.kind) {
      case NodeTestKind::kAnyNode:
        return table_.kind(r) != xml::NodeKind::kAttribute || principal_attr;
      case NodeTestKind::kText:
        return table_.kind(r) == xml::NodeKind::kText;
      case NodeTestKind::kAnyName:
        return principal_attr
                   ? table_.kind(r) == xml::NodeKind::kAttribute
                   : table_.kind(r) == xml::NodeKind::kElement;
      case NodeTestKind::kName:
        return (principal_attr
                    ? table_.kind(r) == xml::NodeKind::kAttribute
                    : table_.kind(r) == xml::NodeKind::kElement) &&
               table_.tag(r) == q.test.name;
    }
    return false;
  }

  /// One axis step over a sorted duplicate-free context row set. A
  /// tripped governor truncates the scans; EvalPatternShredded's final
  /// poll surfaces the latched verdict.
  std::vector<RowId> Step(std::vector<RowId> ctx, const PatternNode& q) {
    std::vector<RowId> out;
    if (ctx.empty() || !gov_.Tick()) return out;
    const std::vector<RowId>& rows = RowsFor(q);
    switch (q.axis) {
      case Axis::kDescendant:
      case Axis::kDescendantOrSelf: {
        // Staircase pruning: covered context rows contribute nothing new
        // (disabled under a positional constraint).
        std::vector<RowId> pruned;
        for (RowId c : ctx) {
          if (q.position == 0 && !pruned.empty() &&
              table_.IsAncestor(pruned.back(), c)) {
            continue;
          }
          pruned.push_back(c);
        }
        size_t pos = 0;
        for (RowId c : pruned) {
          int count = 0;
          if (q.axis == Axis::kDescendantOrSelf && RowMatches(c, q)) {
            if (q.position == 0 || ++count == q.position) out.push_back(c);
          }
          exec::CountIndexSkip();
          auto it = std::upper_bound(
              rows.begin() +
                  static_cast<ptrdiff_t>(q.position == 0 ? pos : 0),
              rows.end(), c);
          size_t scan = static_cast<size_t>(it - rows.begin());
          while (scan < rows.size() && table_.post(rows[scan]) <
                                           table_.post(c)) {
            if (!gov_.Tick()) return out;
            exec::CountIndexEntries(1);
            if (q.position == 0) {
              out.push_back(rows[scan]);
            } else if (++count == q.position) {
              out.push_back(rows[scan]);
              break;
            }
            ++scan;
          }
          if (q.position == 0) pos = scan;
        }
        if (q.position != 0) {
          // Unpruned nested contexts may emit out of order.
          std::sort(out.begin(), out.end());
          out.erase(std::unique(out.begin(), out.end()), out.end());
        }
        break;
      }
      case Axis::kChild:
      case Axis::kAttribute: {
        for (RowId c : ctx) {
          int count = 0;
          exec::CountIndexSkip();
          auto it = std::upper_bound(rows.begin(), rows.end(), c);
          for (size_t scan = static_cast<size_t>(it - rows.begin());
               scan < rows.size() && table_.post(rows[scan]) < table_.post(c);
               ++scan) {
            if (!gov_.Tick()) return out;
            exec::CountIndexEntries(1);
            if (table_.parent(rows[scan]) != c) continue;
            if (q.position == 0) {
              out.push_back(rows[scan]);
            } else if (++count == q.position) {
              out.push_back(rows[scan]);
              break;
            }
          }
        }
        std::sort(out.begin(), out.end());
        out.erase(std::unique(out.begin(), out.end()), out.end());
        break;
      }
      case Axis::kSelf:
        for (RowId c : ctx) {
          if (RowMatches(c, q)) out.push_back(c);
        }
        break;
      case Axis::kParent: {
        for (RowId c : ctx) {
          RowId p = table_.parent(c);
          if (p >= 0 && RowMatches(p, q)) out.push_back(p);
        }
        std::sort(out.begin(), out.end());
        out.erase(std::unique(out.begin(), out.end()), out.end());
        break;
      }
      default:
        break;  // non-pattern axes are guarded by the caller
    }
    return out;
  }

  bool Exists(RowId r, const PatternNode& q) {
    std::vector<RowId> cur = Step({r}, q);
    return !Matches(std::move(cur), q).empty();
  }

  std::vector<RowId> Matches(std::vector<RowId> candidates,
                             const PatternNode& q) {
    if (!q.predicates.empty()) {
      std::vector<RowId> kept;
      kept.reserve(candidates.size());
      for (RowId r : candidates) {
        if (!gov_.Tick()) break;
        bool ok = true;
        for (const PatternNodePtr& pred : q.predicates) {
          if (!Exists(r, *pred)) {
            ok = false;
            break;
          }
        }
        if (ok) kept.push_back(r);
      }
      candidates = std::move(kept);
    }
    if (q.next == nullptr) return candidates;
    std::vector<RowId> next = Step(std::move(candidates), *q.next);
    return Matches(std::move(next), *q.next);
  }

 private:
  const NodeTable& table_;
  exec::GovernorTicker gov_;
};

}  // namespace

Result<std::vector<exec::BindingRow>> EvalPatternShredded(
    const TreePattern& tp, const xdm::Sequence& context) {
  XQTP_FAULT_POINT("storage.pattern.shredded");
  if (tp.root == nullptr) return std::vector<exec::BindingRow>{};
  if (!tp.SingleOutputAtExtractionPoint() || !tp.UsesOnlyPatternAxes()) {
    return exec::EvalPatternNL(tp, context);
  }
  const xml::Document* doc = nullptr;
  std::vector<RowId> ctx;
  for (const xdm::Item& it : context) {
    if (!it.IsNode()) {
      return Status::TypeError(
          "tree pattern applied to a non-node context item");
    }
    if (doc == nullptr) doc = it.node()->doc;
    if (it.node()->doc != doc) return exec::EvalPatternNL(tp, context);
    ctx.push_back(it.node()->pre);
  }
  if (doc == nullptr) return std::vector<exec::BindingRow>{};
  std::sort(ctx.begin(), ctx.end());
  ctx.erase(std::unique(ctx.begin(), ctx.end()), ctx.end());

  const NodeTable& table = NodeTable::For(*doc);
  ShreddedEval eval(table);
  std::vector<RowId> first = eval.Step(std::move(ctx), *tp.root);
  std::vector<RowId> result = eval.Matches(std::move(first), *tp.root);
  XQTP_RETURN_NOT_OK(exec::GovernorPoll());

  Symbol out = tp.OutputFields()[0];
  std::vector<exec::BindingRow> rows;
  rows.reserve(result.size());
  for (RowId r : result) {
    exec::BindingRow row;
    row.fields.emplace_back(out, table.node(r));
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace xqtp::storage
