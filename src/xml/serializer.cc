#include "xml/serializer.h"

#include "xml/document.h"

namespace xqtp::xml {

std::string EscapeText(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

namespace {

void SerializeTo(const Node* n, std::string* out) {
  switch (n->kind) {
    case NodeKind::kDocument:
      for (const Node* c = n->first_child; c != nullptr; c = c->next_sibling) {
        SerializeTo(c, out);
      }
      break;
    case NodeKind::kText:
      *out += EscapeText(n->text);
      break;
    case NodeKind::kAttribute:
      *out += n->doc->interner()->NameOf(n->name);
      *out += "=\"";
      *out += EscapeText(n->text);
      *out += '"';
      break;
    case NodeKind::kElement: {
      const std::string& tag = n->doc->interner()->NameOf(n->name);
      *out += '<';
      *out += tag;
      for (const Node* a : n->attributes) {
        *out += ' ';
        SerializeTo(a, out);
      }
      if (n->first_child == nullptr) {
        *out += "/>";
      } else {
        *out += '>';
        for (const Node* c = n->first_child; c != nullptr;
             c = c->next_sibling) {
          SerializeTo(c, out);
        }
        *out += "</";
        *out += tag;
        *out += '>';
      }
      break;
    }
  }
}

}  // namespace

std::string Serialize(const Node* node) {
  std::string out;
  SerializeTo(node, &out);
  return out;
}

}  // namespace xqtp::xml
