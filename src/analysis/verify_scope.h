// Rule-name threading for the plan/Core verifiers, modeled on LLVM's
// approach of attributing verifier failures to the pass that broke the IR.
//
// Every rewrite-rule application site constructs a VerifyScope naming the
// rule and calls MarkFired() when the rule actually changes the tree. The
// verifiers run at checkpoints (after a rewrite family, after an optimize
// round); a failure there is tagged with the innermost active scope plus
// the trail of rules fired since the last successful checkpoint, so a
// broken plan is pinpointed to the exact rule that produced it.
#ifndef XQTP_ANALYSIS_VERIFY_SCOPE_H_
#define XQTP_ANALYSIS_VERIFY_SCOPE_H_

#include <string>

#include "common/status.h"

namespace xqtp::analysis {

/// Verification default: on in Debug builds, off in Release (the tier-1
/// Release build keeps the paper's benchmark numbers unperturbed; the CI
/// Debug + sanitizer build runs every test under full verification).
#ifndef NDEBUG
inline constexpr bool kVerifyByDefault = true;
#else
inline constexpr bool kVerifyByDefault = false;
#endif

/// RAII scope naming the rewrite rule currently executing.
class VerifyScope {
 public:
  explicit VerifyScope(const char* rule);
  ~VerifyScope();

  VerifyScope(const VerifyScope&) = delete;
  VerifyScope& operator=(const VerifyScope&) = delete;

  /// Records that the named rule actually changed the tree: the rule name
  /// is appended to the fired trail reported by the next failing (and
  /// cleared by the next succeeding) verification checkpoint.
  void MarkFired();

  /// The innermost active rule name, or "" outside any scope.
  static const char* Current();

  /// Rules fired since the last checkpoint, joined with ", ".
  static std::string FiredTrail();

  /// Clears the fired trail (a checkpoint passed).
  static void ClearFiredTrail();

  /// Annotates a non-OK status with the active scope and fired trail:
  /// "<msg> [in <rule>] [after: <rule>, <rule>]".
  [[nodiscard]] static Status Tag(Status s);

  /// Process-wide count of VerifyScope activations (every checkpoint a
  /// compilation opens). Monotonic, thread-safe. Lets tests assert the
  /// verify-at-fill contract of the plan cache: a cache hit opens no
  /// verification scope, so N warm hits leave this counter unchanged.
  static int64_t ActivationCountForTesting();

 private:
  const char* rule_;
};

}  // namespace xqtp::analysis

#endif  // XQTP_ANALYSIS_VERIFY_SCOPE_H_
