// Tree patterns, per the grammar of Section 4.1 of the paper:
//
//   TreePattern ::= IN#FieldName (/Pattern)?
//   Pattern     ::= Step ([Pattern])* (/Pattern)?
//   Step        ::= Axis NodeTest ({FieldName})?
//
// A pattern is a tree of steps: each node has an axis + node test, an
// optional output-field annotation, predicate branches, and an optional
// continuation of the main path. The TupleTreePattern operator evaluates
// the pattern against the context nodes found in the input tuples' field.
#ifndef XQTP_PATTERN_TREE_PATTERN_H_
#define XQTP_PATTERN_TREE_PATTERN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/interner.h"
#include "xdm/axis.h"

namespace xqtp::pattern {

struct PatternNode;
using PatternNodePtr = std::unique_ptr<PatternNode>;

/// One step in a tree pattern.
struct PatternNode {
  Axis axis = Axis::kChild;
  NodeTest test;
  /// Output annotation {field}; kInvalidSymbol when the step's bindings
  /// are not returned.
  Symbol output = kInvalidSymbol;
  /// Positional constraint (the paper's future-work extension): when > 0,
  /// only the position-th node matching axis::test *per parent binding*
  /// (in document order, counted before the predicate branches) matches
  /// this step. 0 means no constraint.
  int position = 0;
  /// Predicate branches ("[Pattern]").
  std::vector<PatternNodePtr> predicates;
  /// Continuation of the main path ("/Pattern").
  PatternNodePtr next;
};

/// A whole tree pattern: the input field holding the context nodes plus
/// the root step of the pattern.
struct TreePattern {
  Symbol input_field = kInvalidSymbol;
  PatternNodePtr root;

  TreePattern() = default;
  TreePattern(TreePattern&&) = default;
  TreePattern& operator=(TreePattern&&) = default;

  TreePattern Clone() const;

  /// The last step of the main path (the extraction point per Def. 4.1).
  PatternNode* ExtractionPoint();
  const PatternNode* ExtractionPoint() const;

  /// All output fields, in root-to-leaf lexical order (main path first,
  /// then predicate branches depth-first at each step).
  std::vector<Symbol> OutputFields() const;

  /// True iff the only output annotation sits on the extraction point —
  /// the case in which the operator's semantics coincide with XPath
  /// (document order, duplicate-free), enabling rewrite rule (f).
  bool SingleOutputAtExtractionPoint() const;

  /// Number of steps (main path + predicate branches).
  int StepCount() const;

  /// Maximum number of predicate branches hanging off any single step.
  int MaxBranching() const;

  /// Renders the paper's syntax, e.g.
  /// "IN#dot/descendant::person[child::emailaddress]/child::name{out}".
  std::string ToString(const StringInterner& interner) const;

  /// True iff every step (main path and predicates) uses an axis allowed
  /// by the pattern grammar (the downward axes). The optimizer only
  /// builds such patterns; hand-built patterns violating this are
  /// evaluated by the nested-loop algorithm.
  bool UsesOnlyPatternAxes() const;

  /// True iff any step carries a positional constraint (the extension).
  bool HasPositionalSteps() const;
};

bool Equal(const PatternNode& a, const PatternNode& b);
bool Equal(const TreePattern& a, const TreePattern& b);

/// Builds a single-step pattern IN#input/axis::test{output}.
TreePattern MakeSingleStep(Symbol input_field, Axis axis, const NodeTest& test,
                           Symbol output);

/// Replaces the (unique) occurrence of output field `from` with `to`.
/// Returns false if `from` is not an output of the pattern.
bool RenameOutput(TreePattern* tp, Symbol from, Symbol to);

/// Removes the output annotation equal to `field`; used when merging
/// patterns makes an intermediate binding unobservable.
bool ClearOutput(TreePattern* tp, Symbol field);

/// Appends `suffix`'s root chain after this pattern's extraction point
/// (rewrite rule (d)): pattern/step1{out1} + IN#out1/step2{out2}
/// = pattern/step1/step2{out2}. The caller must have verified that
/// `suffix.input_field` equals this pattern's extraction-point output.
void AppendPath(TreePattern* tp, TreePattern suffix);

/// Like AppendPath but KEEPS the extraction point's output annotation,
/// producing a multi-output ("generalized") tree pattern — rewrite rule
/// (d') of the multi-variable extension. The operator's Section 4.1
/// semantics (distinct bindings in root-to-leaf lexical order) make this
/// merge unconditionally equivalent to the cascade.
void AppendPathKeepOutput(TreePattern* tp, TreePattern suffix);

/// Attaches `pred` (rooted at this pattern's extraction-point output) as a
/// predicate branch of the extraction point (rewrite rule (e)).
void AttachPredicate(TreePattern* tp, TreePattern pred);

}  // namespace xqtp::pattern

#endif  // XQTP_PATTERN_TREE_PATTERN_H_
