// Morsel-parallel execution of TupleTreePattern operators.
//
// The paper's payoff — a detected tree pattern is ONE coarse-grained
// operator — makes that operator the natural unit of intra-query
// parallelism: its root-input stream partitions into independent morsels,
// each evaluated by any of the sequential algorithms, with an
// order-preserving merge re-establishing the operator's Section 4.1
// semantics (distinct bindings, root-to-leaf lexical order). The nested
// Map/TreeJoin "old engine" plan has no such unit to cut.
//
// Two morselization strategies, chosen per evaluation:
//
//  1. context partitioning — when the pattern's context sequence is
//     already wide (>= EvalOptions::parallel_min_fanout nodes), contiguous
//     document-order ranges of the sorted context become morsels and each
//     runs the unmodified pattern.
//  2. root fan-out — the common optimized plan feeds ONE context node (the
//     document root) per pattern. The driver expands the root step's
//     candidate set directly from the per-tag index (the staircase-join
//     region scan), rewrites the pattern to be self-rooted (the remainder:
//     predicates + continuation, annotations preserved), and partitions
//     the candidates into morsels.
//
// The pool is per query: a fixed set of threads with a shared atomic
// morsel cursor — no work stealing, just finer-than-thread morsels for
// load balance. Workers collect their ExecStats into per-morsel slots
// that the driver merges into the calling scope on join, so counters stay
// exact under parallelism. Pattern evaluation never touches the engine's
// interner (see StringInterner::ExecutionFreeze); lazily-built document
// indexes are pre-warmed before fan-out so Document::lazy_mu_ is only
// ever taken on its shared (read) path by workers.
#ifndef XQTP_EXEC_PARALLEL_H_
#define XQTP_EXEC_PARALLEL_H_

#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "exec/governor.h"
#include "exec/pattern_eval.h"
#include "exec/tuple.h"
#include "pattern/tree_pattern.h"
#include "xdm/item.h"

namespace xqtp::exec {

/// A fixed pool of worker threads executing batches of indexed morsels.
/// Morsels are claimed from a single atomic cursor (morsel-driven, no
/// stealing); the thread calling Run participates, so a pool of size N
/// spawns N-1 workers. Run calls are serialized — a pool may be shared
/// across threads, but morsel tasks must never invoke Run recursively
/// (the nested call would wait on the pool it is running on).
class ThreadPool {
 public:
  /// Resolves an EvalOptions::threads value: 0 means one thread per
  /// hardware thread, anything else is taken literally (minimum 1).
  static int ResolveThreads(int threads);

  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(0) ... fn(count-1), each exactly once, distributed over the
  /// pool plus the calling thread; returns when all have finished. `fn`
  /// must not throw and must not call Run on this pool (the EXCLUDES
  /// turns a same-thread re-entry into a compile-time diagnostic).
  void Run(int count, const std::function<void(int)>& fn)
      EXCLUDES(run_mu_, mu_);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  /// Serializes whole Run calls; always taken before mu_ (the
  /// ACQUIRED_BEFORE declaration lets clang check the ordering).
  Mutex run_mu_ ACQUIRED_BEFORE(mu_);

  Mutex mu_;  ///< guards the batch state below
  CondVar work_cv_;
  CondVar done_cv_;
  const std::function<void(int)>* fn_ GUARDED_BY(mu_) = nullptr;
  int count_ GUARDED_BY(mu_) = 0;
  int next_ GUARDED_BY(mu_) = 0;
  int done_ GUARDED_BY(mu_) = 0;
  uint64_t generation_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
};

/// Per-evaluation parallelism parameters handed down from EvalOptions.
/// `pool` is a lazy accessor so the (per-query) pool is only created once
/// a pattern actually morselizes. It receives the driver's *effective*
/// thread count (see ClampParallelThreads) so the first morselizing
/// evaluation sizes the pool to the work actually available instead of
/// the requested maximum — spawning workers that would only contend on
/// the morsel cursor is exactly the scaling cliff bench_parallel
/// recorded at 4 and 8 threads on ~1000-unit fan-outs.
struct ParallelContext {
  std::function<ThreadPool*(int threads)> pool;
  /// The query's governor, or nullptr when no limits are set. Workers
  /// install it (exec/governor.h ScopedGovernor) for the duration of each
  /// morsel, observe cancellation between morsels, and share its sticky
  /// verdict — the governor itself is thread-safe.
  QueryGovernor* governor = nullptr;
  /// Resolved pool size (>= 2; a context is only built for parallel runs).
  int threads = 2;
  /// Minimum root fan-out (context nodes or root-step candidates) before
  /// the driver morselizes; below it the sequential path runs.
  int min_fanout = 256;
  /// Morsel granularity: the driver targets threads * morsels_per_thread
  /// morsels, never smaller than min_fanout / 4 units each.
  int morsels_per_thread = 4;
};

/// Effective worker count for `units` parallel work units: one thread
/// per `min_fanout` units, clamped to [2, threads]. The floor of 2
/// preserves the min_fanout gate's decision that parallelism is
/// worthwhile at all; the per-unit scaling stops an 8-thread request
/// from oversubscribing a fan-out that only feeds 2-3 threads (pool
/// spawn + morsel-cursor contention made 8 threads *slower* than 2 on
/// the XMark //item//location bench before this clamp).
int ClampParallelThreads(size_t units, int threads, int min_fanout);

/// Attempts morsel-parallel evaluation of `tp` over `context` with the
/// (already cost-resolved) algorithm. Returns true and fills `*out` when
/// the driver handled the evaluation; false when the input is not
/// morselizable (small fan-out, non-node contexts, positional or
/// non-downward root, multi-document context) and the sequential path
/// should run instead. Results are bit-identical to the sequential
/// algorithm: same rows, same order, same output fields.
bool TryEvalPatternParallel(const pattern::TreePattern& tp,
                            const xdm::Sequence& context, PatternAlgo algo,
                            const ParallelContext& par,
                            Result<std::vector<BindingRow>>* out);

/// Builds a TupleTreePattern's output batch from binding rows, with
/// Tuple::Set overwrite semantics per row: the schema is the input
/// batch's columns in order (a binding field naming an input column
/// replaces its value), followed by the pattern's new binding fields in
/// first-seen order. Rows added before a binding field first appears
/// read it as the empty sequence — indistinguishable from the row-mode
/// Tuple that simply lacks the field.
///
/// When the input batch has exactly one logical row (the dominant
/// optimized plan: one tuple carrying the document root), input columns
/// that no binding overwrites are NOT replicated per output row — Finish
/// attaches them as broadcast columns sharing the input's storage, so a
/// root fan-out producing 10^5 binding rows copies zero input sequences.
class PatternBatchBuilder {
 public:
  explicit PatternBatchBuilder(const TupleBatch& in);

  /// Appends one output row: input row `row`'s fields overlaid with
  /// `brow`'s bindings (each bound node as a singleton sequence).
  void Add(size_t row, const BindingRow& brow);

  size_t rows() const { return rows_; }

  /// Assembles the batch (counts rows() materialized tuples; the
  /// ExecStats batch count is taken where the batch is YIELDED between
  /// operators, so internal morsel batches don't inflate it). The
  /// builder is consumed.
  TupleBatch Finish();

 private:
  struct Col {
    Symbol field;
    /// Input column gathered as the row default, or -1 (binding-only,
    /// defaults to the empty sequence).
    int src;
    std::vector<xdm::Sequence> values;
  };

  Col* FindCol(Symbol field);
  void EnsureBindingColumn(Symbol field, size_t row);

  const TupleBatch& in_;
  /// Single-row input: input columns stay shared (broadcast) unless a
  /// binding overwrites them.
  bool broadcast_;
  std::vector<Col> cols_;
  size_t rows_ = 0;
};

/// Morsel-parallel evaluation of one TupleTreePattern operator over a
/// materialized input batch: logical row ranges become morsels, each row
/// is evaluated with the sequential algorithm into a PatternBatchBuilder,
/// and the per-morsel batches are concatenated in input-row order
/// (exactly the sequential loop's order — TupleBatch::Append moves the
/// uniquely-owned morsel columns). The caller has checked
/// in.rows() >= par.min_fanout.
[[nodiscard]]
Result<TupleBatch> EvalPatternTuplesParallel(const pattern::TreePattern& tp,
                                             const TupleBatch& in,
                                             PatternAlgo algo,
                                             const ParallelContext& par);

/// Number of pattern evaluations that actually fanned out to a worker
/// pool since process start (either morselization strategy, context- or
/// tuple-level). Process-wide, monotonic, thread-safe. Exposed so tests
/// can assert that a given execution path did — or, for the sequential
/// legacy Engine::Execute contract, did not — parallelize.
int64_t ParallelEvaluationCountForTesting();

/// Pre-builds the lazily-constructed per-tag streams (and, for the
/// shredded algorithm, the relational NodeTable) that evaluating `tp`
/// with `algo` will touch, so worker threads only ever hit the built
/// fast path of Document's lazy getters.
void PrewarmPatternIndexes(const xml::Document& doc,
                           const pattern::TreePattern& tp, PatternAlgo algo);

}  // namespace xqtp::exec

#endif  // XQTP_EXEC_PARALLEL_H_
