file(REMOVE_RECURSE
  "CMakeFiles/bench_positional.dir/bench_positional.cc.o"
  "CMakeFiles/bench_positional.dir/bench_positional.cc.o.d"
  "bench_positional"
  "bench_positional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_positional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
