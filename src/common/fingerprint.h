// Canonical query fingerprinting for the compiled-plan cache
// (engine/plan_cache.h): a 64-bit FNV-1a-based hash over the query text
// with whitespace and XQuery comments normalized away, so the millions of
// textual variants a client fleet produces ("$input//item", "$input //
// item", "(: v2 :) $input//item") all land on one cache entry.
//
// Canonicalization mirrors the lexer's token separation rules
// (xquery/lexer.cc) without building tokens:
//  - (: ... :) comments (nestable) are dropped entirely;
//  - whitespace runs collapse to nothing, except that a single ' ' is
//    kept between two characters that would otherwise fuse into one
//    name/number token ("for $x" stays "for $x", but "$input // item"
//    becomes "$input//item");
//  - string literals are copied verbatim, whitespace and all — "a  b"
//    and "a b" are different strings.
// Malformed input (unterminated comment or string) canonicalizes
// best-effort; the later parse fails and errors are never cached, so a
// canonicalization collision between two *invalid* queries is harmless.
#ifndef XQTP_COMMON_FINGERPRINT_H_
#define XQTP_COMMON_FINGERPRINT_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace xqtp {

inline constexpr uint64_t kFingerprintSeed = 1469598103934665603ull;

/// FNV-1a over `bytes`, continuing from `h` (chain calls to hash a
/// composite key incrementally).
uint64_t HashBytes(std::string_view bytes, uint64_t h = kFingerprintSeed);

/// Folds a 64-bit value into the hash, byte by byte (used for option
/// bits and integer knobs of a fingerprint).
uint64_t HashCombine(uint64_t h, uint64_t value);

/// The canonical form described above. Deterministic; never fails.
std::string CanonicalizeQuery(std::string_view query);

/// Renders a fingerprint the way Explain and the cache stats print it:
/// 16 lowercase hex digits.
std::string FingerprintHex(uint64_t fp);

}  // namespace xqtp

#endif  // XQTP_COMMON_FINGERPRINT_H_
