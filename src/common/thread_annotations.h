// Clang thread-safety-analysis annotation macros (no-ops elsewhere).
//
// These wrap the capability attributes documented in
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html so that lock
// discipline is machine-checked at compile time: `clang++ -Wthread-safety`
// (promoted to an error by the CI gate, ci/check.sh) proves that every
// access to a GUARDED_BY member happens with the named capability held,
// on every path, including the interleavings no test executes. Under any
// other compiler every macro expands to nothing, so the annotations cost
// nothing at runtime and nothing under gcc.
//
// Conventions in this codebase (see DESIGN.md, "Static concurrency
// analysis"):
//  - never use std::mutex / std::lock_guard directly; use the annotated
//    wrappers in common/mutex.h (enforced textually by tools/lint.py,
//    rule raw-sync — the analysis cannot see through unannotated types);
//  - GUARDED_BY on every member that a thread other than the owner can
//    touch; PT_GUARDED_BY when the *pointee* (not the pointer cell) is
//    the shared state;
//  - REQUIRES / REQUIRES_SHARED on private helpers that expect a caller
//    to hold the lock, instead of commenting "caller must hold mu_".
#ifndef XQTP_COMMON_THREAD_ANNOTATIONS_H_
#define XQTP_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && !defined(SWIG)
#define XQTP_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define XQTP_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

/// Declares a class to be a capability (a lock). The string names the
/// capability kind in diagnostics ("mutex", "shared_mutex").
#define CAPABILITY(x) XQTP_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Declares an RAII class whose constructor acquires and destructor
/// releases a capability (MutexLock, ReaderLock, ...).
#define SCOPED_CAPABILITY XQTP_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Data member may only be read or written while holding the capability.
#define GUARDED_BY(x) XQTP_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member whose POINTEE may only be touched while holding the
/// capability (the pointer cell itself is unguarded).
#define PT_GUARDED_BY(x) XQTP_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Lock-ordering declarations on mutex members: this mutex must be
/// acquired before/after the named ones (deadlock detection).
#define ACQUIRED_BEFORE(...) \
  XQTP_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  XQTP_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// Function requires the capability to be held (exclusively / shared) on
/// entry, and does not release it.
#define REQUIRES(...) \
  XQTP_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  XQTP_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (exclusively / shared); it must not be
/// held on entry and is held on exit.
#define ACQUIRE(...) \
  XQTP_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  XQTP_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (exclusive / shared / either mode —
/// RELEASE_GENERIC is what a scoped capability's destructor wants when the
/// scope may hold the lock in either mode).
#define RELEASE(...) \
  XQTP_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  XQTP_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  XQTP_THREAD_ANNOTATION_ATTRIBUTE(release_generic_capability(__VA_ARGS__))

/// Function tries to acquire the capability and returns `b` on success.
#define TRY_ACQUIRE(...) \
  XQTP_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  XQTP_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (non-reentrant entry points).
#define EXCLUDES(...) \
  XQTP_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Dynamic assertion that the capability is held (for code reached only
/// under a lock the analysis cannot follow).
#define ASSERT_CAPABILITY(x) \
  XQTP_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  XQTP_THREAD_ANNOTATION_ATTRIBUTE(assert_shared_capability(x))

/// Function returns a reference to the named capability (accessor).
#define RETURN_CAPABILITY(x) XQTP_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: the function is deliberately not analyzed. Every use
/// must carry a comment saying why the invariant holds anyway.
#define NO_THREAD_SAFETY_ANALYSIS \
  XQTP_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // XQTP_COMMON_THREAD_ANNOTATIONS_H_
