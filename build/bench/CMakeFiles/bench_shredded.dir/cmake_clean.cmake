file(REMOVE_RECURSE
  "CMakeFiles/bench_shredded.dir/bench_shredded.cc.o"
  "CMakeFiles/bench_shredded.dir/bench_shredded.cc.o.d"
  "bench_shredded"
  "bench_shredded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shredded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
