// Cost-based tree-pattern algorithm selection — the paper's concluding
// future-work item: "Clearly, an accurate cost model is needed."
//
// The model estimates, per algorithm, the number of node visits / index
// entries touched for evaluating a pattern over a given context, using
// per-document statistics (node count, average fan-out, per-tag stream
// sizes) and the contexts' depths (deep contexts cover exponentially
// smaller index windows). It reproduces the paper's Section 5 decision
// heuristics:
//   - index algorithms (SC/TJ) win on rooted patterns,
//   - the nested-loop join wins on highly selective contexts (Section 5.3),
//   - the holistic twig join overtakes staircase join as patterns branch.
#ifndef XQTP_EXEC_COST_MODEL_H_
#define XQTP_EXEC_COST_MODEL_H_

#include "exec/pattern_eval.h"
#include "xml/document.h"

namespace xqtp::exec {

/// Per-document statistics used by the cost model (an alias of the
/// lazily-computed xml::DocumentStats — cached on the document itself).
using DocStats = xml::DocumentStats;

/// Returns the cached statistics of `doc`.
const DocStats& StatsFor(const xml::Document& doc);

/// Estimated cost (abstract node-visit units) of evaluating `tp` over the
/// given contexts with `algo`.
double EstimateCost(const pattern::TreePattern& tp,
                    const xdm::Sequence& context, PatternAlgo algo);

/// The cheapest algorithm for this pattern/context per the model.
PatternAlgo ChooseAlgorithm(const pattern::TreePattern& tp,
                            const xdm::Sequence& context);

}  // namespace xqtp::exec

#endif  // XQTP_EXEC_COST_MODEL_H_
