// Section 5.1 of the paper: compile the 20 syntactic variants of the
// Figure 4 path and verify (and time) that they all reach one plan. Also
// measures execution of a representative variant on the old and new
// engines, which is the data behind Figure 4's robustness claim.
#include <set>

#include "algebra/printer.h"
#include "bench_common.h"
#include "workload/variants.h"

namespace xqtp::bench {
namespace {

void CompileVariant(benchmark::State& state, int index) {
  std::vector<std::string> variants = workload::GeneratePathVariants(20);
  const std::string& q = variants[static_cast<size_t>(index)];
  engine::Engine& e = SharedEngine();
  int patterns = 0;
  for (auto _ : state) {
    auto cq = e.Compile(q);
    if (!cq.ok()) {
      state.SkipWithError(cq.status().ToString().c_str());
      return;
    }
    patterns = cq->Stats().tree_pattern_ops;
    benchmark::DoNotOptimize(cq);
  }
  state.counters["patterns"] = patterns;
}

void ExecuteVariant(benchmark::State& state, int index,
                    bool detect_patterns) {
  std::vector<std::string> variants = workload::GeneratePathVariants(20);
  engine::CompileOptions copts;
  copts.detect_tree_patterns = detect_patterns;
  RunQueryBenchmark(state, variants[static_cast<size_t>(index)],
                    XmarkDoc("xmark_variants", 0.1),
                    exec::PatternAlgo::kStaircase,
                    engine::PlanChoice::kOptimized, copts);
}

void Register() {
  // Sanity gate, printed before the benchmarks: all 20 variants yield one
  // distinct plan.
  {
    engine::Engine& e = SharedEngine();
    std::set<std::string> plans;
    for (const std::string& q : workload::GeneratePathVariants(20)) {
      auto cq = e.Compile(q);
      if (cq.ok()) {
        plans.insert(
            algebra::ToString(cq->optimized(), cq->vars(), *e.interner()));
      }
    }
    std::printf("# Variants sanity: %zu distinct plan(s) across 20 variants"
                " (expected 1)\n",
                plans.size());
  }
  for (int i : {0, 4, 9, 14, 19}) {
    benchmark::RegisterBenchmark(
        ("Variants/compile/v" + std::to_string(i)).c_str(),
        [i](benchmark::State& s) { CompileVariant(s, i); })
        ->Unit(benchmark::kMicrosecond);
  }
  for (int i : {0, 9, 19}) {
    benchmark::RegisterBenchmark(
        ("Variants/exec-rewritten/v" + std::to_string(i)).c_str(),
        [i](benchmark::State& s) { ExecuteVariant(s, i, true); })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("Variants/exec-oldengine/v" + std::to_string(i)).c_str(),
        [i](benchmark::State& s) { ExecuteVariant(s, i, false); })
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace xqtp::bench

int main(int argc, char** argv) {
  xqtp::bench::Register();
  return xqtp::bench::BenchMain(argc, argv);
}
