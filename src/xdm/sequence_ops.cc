#include "xdm/sequence_ops.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "common/exec_stats.h"
#include "xml/document.h"

namespace xqtp::xdm {

Result<Sequence> DistinctDocOrder(Sequence seq) {
  // Proven-distinct input (single-output patterns and staircase steps emit
  // document-ordered duplicate-free sequences by construction): skip the
  // re-sort. Mixed node/atomic sequences fail the check, so the type-error
  // path below is preserved.
  if (IsDistinctDocOrdered(seq)) return seq;
  bool all_nodes = true;
  bool any_nodes = false;
  for (const Item& it : seq) {
    if (it.IsNode()) {
      any_nodes = true;
    } else {
      all_nodes = false;
    }
  }
  if (!all_nodes) {
    // XQuery path semantics: a result of only atomic values is returned
    // as-is (no document order to establish); mixing nodes and atomics
    // is a type error.
    if (!any_nodes) return seq;
    return Status::TypeError(
        "fs:distinct-doc-order applied to a sequence mixing nodes and "
        "atomic values");
  }
  std::sort(seq.begin(), seq.end(), [](const Item& a, const Item& b) {
    return xml::DocOrderLess(a.node(), b.node());
  });
  seq.erase(std::unique(seq.begin(), seq.end(),
                        [](const Item& a, const Item& b) {
                          return a.node() == b.node();
                        }),
            seq.end());
  return seq;
}

bool IsDistinctDocOrdered(const Sequence& seq) {
  for (size_t i = 0; i + 1 < seq.size(); ++i) {
    if (!seq[i].IsNode() || !seq[i + 1].IsNode()) return false;
    if (!xml::DocOrderLess(seq[i].node(), seq[i + 1].node())) return false;
  }
  return true;
}

Result<bool> EffectiveBooleanValue(const Sequence& seq) {
  if (seq.empty()) return false;
  if (seq[0].IsNode()) return true;
  if (seq.size() > 1) {
    return Status::TypeError(
        "effective boolean value of a multi-item atomic sequence");
  }
  const Item& it = seq[0];
  if (it.IsBoolean()) return it.boolean();
  if (it.IsInteger()) return it.integer() != 0;
  if (it.IsDouble()) return it.dbl() != 0.0 && !(it.dbl() != it.dbl());
  return !it.str().empty();
}

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

namespace {

bool CompareDoubles(CompareOp op, double a, double b) {
  switch (op) {
    case CompareOp::kEq:
      return a == b;
    case CompareOp::kNe:
      return a != b;
    case CompareOp::kLt:
      return a < b;
    case CompareOp::kLe:
      return a <= b;
    case CompareOp::kGt:
      return a > b;
    case CompareOp::kGe:
      return a >= b;
  }
  return false;
}

bool CompareStrings(CompareOp op, const std::string& a, const std::string& b) {
  int c = a.compare(b);
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
  }
  return false;
}

/// One atomized pair comparison. Untyped (node-derived) values follow the
/// other operand: numeric if it is numeric, string otherwise.
bool ComparePair(CompareOp op, const Item& a, const Item& b) {
  bool a_num = a.IsNumeric();
  bool b_num = b.IsNumeric();
  bool a_untyped = a.IsNode();
  bool b_untyped = b.IsNode();
  if (a_num || b_num) {
    double da = a_num ? a.AsDouble()
                      : std::strtod(a.StringValue().c_str(), nullptr);
    double db = b_num ? b.AsDouble()
                      : std::strtod(b.StringValue().c_str(), nullptr);
    // A non-numeric string coerced against a number yields 0 via strtod;
    // good enough for the untyped-data fragment we support.
    (void)a_untyped;
    (void)b_untyped;
    return CompareDoubles(op, da, db);
  }
  if (a.IsBoolean() || b.IsBoolean()) {
    bool ba = a.IsBoolean() ? a.boolean() : !a.StringValue().empty();
    bool bb = b.IsBoolean() ? b.boolean() : !b.StringValue().empty();
    return CompareDoubles(op, ba ? 1.0 : 0.0, bb ? 1.0 : 0.0);
  }
  return CompareStrings(op, a.StringValue(), b.StringValue());
}

}  // namespace

Result<bool> GeneralCompare(CompareOp op, const Sequence& lhs,
                            const Sequence& rhs) {
  for (const Item& a : lhs) {
    for (const Item& b : rhs) {
      if (ComparePair(op, a, b)) return true;
    }
  }
  return false;
}

const char* ArithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "div";
    case ArithOp::kIDiv:
      return "idiv";
    case ArithOp::kMod:
      return "mod";
  }
  return "?";
}

double NumericValue(const Item& item) {
  if (item.IsNumeric()) return item.AsDouble();
  if (item.IsBoolean()) return item.boolean() ? 1.0 : 0.0;
  const std::string s = item.StringValue();
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  // Trailing junk (or an empty string) is not a number.
  while (end != nullptr && *end != '\0') {
    if (!std::isspace(static_cast<unsigned char>(*end))) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    ++end;
  }
  if (end == s.c_str()) return std::numeric_limits<double>::quiet_NaN();
  return v;
}

Result<Sequence> EvalArith(ArithOp op, const Sequence& lhs,
                           const Sequence& rhs) {
  if (lhs.empty() || rhs.empty()) return Sequence{};
  if (lhs.size() > 1 || rhs.size() > 1) {
    return Status::TypeError("arithmetic on a multi-item sequence");
  }
  double a = NumericValue(lhs[0]);
  double b = NumericValue(rhs[0]);
  bool integral = lhs[0].IsInteger() && rhs[0].IsInteger();
  switch (op) {
    case ArithOp::kAdd:
      return integral ? Sequence{Item(lhs[0].integer() + rhs[0].integer())}
                      : Sequence{Item(a + b)};
    case ArithOp::kSub:
      return integral ? Sequence{Item(lhs[0].integer() - rhs[0].integer())}
                      : Sequence{Item(a - b)};
    case ArithOp::kMul:
      return integral ? Sequence{Item(lhs[0].integer() * rhs[0].integer())}
                      : Sequence{Item(a * b)};
    case ArithOp::kDiv:
      if (b == 0) return Status::TypeError("division by zero");
      return Sequence{Item(a / b)};
    case ArithOp::kIDiv:
      if (b == 0) return Status::TypeError("integer division by zero");
      return Sequence{Item(static_cast<int64_t>(a / b))};
    case ArithOp::kMod: {
      if (b == 0) return Status::TypeError("modulus by zero");
      if (integral) {
        return Sequence{Item(lhs[0].integer() % rhs[0].integer())};
      }
      return Sequence{Item(std::fmod(a, b))};
    }
  }
  return Status::Internal("unreachable arithmetic operator");
}

Result<std::string> StringArg(const Sequence& seq) {
  if (seq.empty()) return std::string();
  if (seq.size() > 1) {
    return Status::TypeError("expected an at-most-one-item sequence");
  }
  return seq[0].StringValue();
}

bool MatchesTest(const xml::Node* node, Axis axis, const NodeTest& test) {
  bool principal_attr = axis == Axis::kAttribute;
  switch (test.kind) {
    case NodeTestKind::kAnyNode:
      return true;
    case NodeTestKind::kText:
      return node->IsText();
    case NodeTestKind::kAnyName:
      return principal_attr ? node->IsAttribute() : node->IsElement();
    case NodeTestKind::kName:
      if (principal_attr) {
        return node->IsAttribute() && node->name == test.name;
      }
      return node->IsElement() && node->name == test.name;
  }
  return false;
}

namespace {

void CollectDescendants(const xml::Node* n, Axis axis, const NodeTest& test,
                        Sequence* out) {
  for (const xml::Node* c = n->first_child; c != nullptr;
       c = c->next_sibling) {
    CountNodesVisited(1);
    if (MatchesTest(c, axis, test)) out->push_back(Item(c));
    CollectDescendants(c, axis, test, out);
  }
}

}  // namespace

void EvalAxisStep(const xml::Node* context, Axis axis, const NodeTest& test,
                  Sequence* out) {
  switch (axis) {
    case Axis::kChild:
      for (const xml::Node* c = context->first_child; c != nullptr;
           c = c->next_sibling) {
        CountNodesVisited(1);
        if (MatchesTest(c, axis, test)) out->push_back(Item(c));
      }
      break;
    case Axis::kDescendant:
      CollectDescendants(context, axis, test, out);
      break;
    case Axis::kDescendantOrSelf:
      if (MatchesTest(context, axis, test)) out->push_back(Item(context));
      CollectDescendants(context, axis, test, out);
      break;
    case Axis::kAttribute:
      for (const xml::Node* a : context->attributes) {
        if (MatchesTest(a, axis, test)) out->push_back(Item(a));
      }
      break;
    case Axis::kSelf:
      if (MatchesTest(context, axis, test)) out->push_back(Item(context));
      break;
    case Axis::kParent:
      if (context->parent != nullptr &&
          MatchesTest(context->parent, axis, test)) {
        out->push_back(Item(context->parent));
      }
      break;
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf: {
      // Emit in document order (outermost ancestor first).
      std::vector<const xml::Node*> chain;
      const xml::Node* n =
          axis == Axis::kAncestorOrSelf ? context : context->parent;
      for (; n != nullptr; n = n->parent) {
        if (MatchesTest(n, axis, test)) chain.push_back(n);
      }
      for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
        out->push_back(Item(*it));
      }
      break;
    }
    case Axis::kFollowingSibling:
      for (const xml::Node* s = context->next_sibling; s != nullptr;
           s = s->next_sibling) {
        if (MatchesTest(s, axis, test)) out->push_back(Item(s));
      }
      break;
    case Axis::kPrecedingSibling: {
      // Document order: collect from the first sibling forward.
      std::vector<const xml::Node*> sibs;
      for (const xml::Node* s = context->prev_sibling; s != nullptr;
           s = s->prev_sibling) {
        if (MatchesTest(s, axis, test)) sibs.push_back(s);
      }
      for (auto it = sibs.rbegin(); it != sibs.rend(); ++it) {
        out->push_back(Item(*it));
      }
      break;
    }
  }
}

}  // namespace xqtp::xdm

namespace xqtp {

bool AxisAllowedInPattern(Axis axis) {
  switch (axis) {
    case Axis::kChild:
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf:
    case Axis::kAttribute:
    case Axis::kSelf:
      return true;
    case Axis::kParent:
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf:
    case Axis::kFollowingSibling:
    case Axis::kPrecedingSibling:
      return false;
  }
  return false;
}

const char* AxisName(Axis axis) {
  switch (axis) {
    case Axis::kChild:
      return "child";
    case Axis::kDescendant:
      return "descendant";
    case Axis::kDescendantOrSelf:
      return "descendant-or-self";
    case Axis::kAttribute:
      return "attribute";
    case Axis::kSelf:
      return "self";
    case Axis::kParent:
      return "parent";
    case Axis::kAncestor:
      return "ancestor";
    case Axis::kAncestorOrSelf:
      return "ancestor-or-self";
    case Axis::kFollowingSibling:
      return "following-sibling";
    case Axis::kPrecedingSibling:
      return "preceding-sibling";
  }
  return "?";
}

std::string NodeTest::ToString(const StringInterner& interner) const {
  switch (kind) {
    case NodeTestKind::kName:
      return interner.NameOf(name);
    case NodeTestKind::kAnyName:
      return "*";
    case NodeTestKind::kAnyNode:
      return "node()";
    case NodeTestKind::kText:
      return "text()";
  }
  return "?";
}

std::string StepToString(Axis axis, const NodeTest& test,
                         const StringInterner& interner) {
  return std::string(AxisName(axis)) + "::" + test.ToString(interner);
}

}  // namespace xqtp
