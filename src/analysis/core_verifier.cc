#include "analysis/core_verifier.h"

#include <string>
#include <unordered_set>

#include "analysis/verify_scope.h"
#include "core/odf.h"

namespace xqtp::analysis {

namespace {

using core::CoreExpr;
using core::CoreExprPtr;
using core::CoreKind;
using core::VarId;
using core::VarTable;

Status Violation(const char* invariant, const std::string& detail) {
  return VerifyScope::Tag(Status::Internal(
      std::string("core verifier: [") + invariant + "] " + detail));
}

class CoreVerifier {
 public:
  CoreVerifier(const VarTable& vars, const CoreVerifyOptions& opts)
      : vars_(vars), opts_(opts) {}

  Status Run(const CoreExpr& e) {
    std::unordered_set<VarId> scope;
    return Check(e, &scope);
  }

 private:
  std::string NameOf(VarId v) const {
    if (v < 0 || v >= static_cast<VarId>(vars_.size())) {
      return "#" + std::to_string(v);
    }
    return "$" + vars_.NameOf(v);
  }

  Status CheckVarRange(VarId v) const {
    if (v < 0 || v >= static_cast<VarId>(vars_.size())) {
      return Violation("var-range", "variable id " + std::to_string(v) +
                                        " is not registered in the VarTable");
    }
    return Status::OK();
  }

  /// Registers a binder occurrence of `v` and adds it to `scope`.
  Status Bind(VarId v, std::unordered_set<VarId>* scope) {
    XQTP_RETURN_NOT_OK(CheckVarRange(v));
    if (vars_.IsGlobal(v)) {
      return Violation("binder-is-global",
                       "binder rebinds query global " + NameOf(v));
    }
    if (!bound_anywhere_.insert(v).second) {
      return Violation("duplicate-binder",
                       "variable " + NameOf(v) +
                           " is bound by more than one binder (VarIds must "
                           "be unique)");
    }
    scope->insert(v);
    return Status::OK();
  }

  Status CheckUse(VarId v, const std::unordered_set<VarId>& scope,
                  const char* what) {
    XQTP_RETURN_NOT_OK(CheckVarRange(v));
    if (!vars_.IsGlobal(v) && scope.count(v) == 0) {
      return Violation("def-before-use",
                       std::string(what) + " " + NameOf(v) +
                           " is neither a query global nor bound by an "
                           "enclosing binder");
    }
    return Status::OK();
  }

  Status CheckArity(const CoreExpr& e, size_t expect) const {
    if (e.children.size() != expect) {
      return Violation("core-arity",
                       "node expects " + std::to_string(expect) +
                           " children, has " +
                           std::to_string(e.children.size()));
    }
    return Status::OK();
  }

  Status CheckOdfCache(const CoreExpr& e) {
    if (!opts_.check_odf_cache || (e.odf_cache & core::kOdfCachePresent) == 0) {
      return Status::OK();
    }
    core::OdfProps fresh = core::ComputeOdf(e, vars_, odf_env_);
    bool cached_ordered = (e.odf_cache & core::kOdfCacheOrdered) != 0;
    bool cached_dup_free = (e.odf_cache & core::kOdfCacheDupFree) != 0;
    if (cached_ordered && !fresh.ordered) {
      return Violation("odf-cache-soundness",
                       "cached annotation claims `ordered` but a fresh "
                       "derivation cannot prove it");
    }
    if (cached_dup_free && !fresh.dup_free) {
      return Violation("odf-cache-soundness",
                       "cached annotation claims `dup_free` but a fresh "
                       "derivation cannot prove it");
    }
    return Status::OK();
  }

  Status Check(const CoreExpr& e, std::unordered_set<VarId>* scope) {
    // The ODF re-derivation uses the environment of this node's scope
    // entry, mirroring AnnotateOdf.
    XQTP_RETURN_NOT_OK(CheckOdfCache(e));

    if (e.where && e.kind != CoreKind::kFor) {
      return Violation("core-arity",
                       "a where clause is only valid on a for expression");
    }

    switch (e.kind) {
      case CoreKind::kVar:
        XQTP_RETURN_NOT_OK(CheckArity(e, 0));
        return CheckUse(e.var, *scope, "variable");
      case CoreKind::kLiteral:
        return CheckArity(e, 0);
      case CoreKind::kStep:
        XQTP_RETURN_NOT_OK(CheckArity(e, 0));
        return CheckUse(e.var, *scope, "step context variable");
      case CoreKind::kSequence:
        for (const CoreExprPtr& c : e.children) {
          XQTP_RETURN_NOT_OK(Check(*c, scope));
        }
        return Status::OK();
      case CoreKind::kLet: {
        XQTP_RETURN_NOT_OK(CheckArity(e, 2));
        XQTP_RETURN_NOT_OK(Check(*e.children[0], scope));
        XQTP_RETURN_NOT_OK(Bind(e.var, scope));
        odf_env_[e.var] = core::ComputeOdf(*e.children[0], vars_, odf_env_);
        Status st = Check(*e.children[1], scope);
        scope->erase(e.var);
        return st;
      }
      case CoreKind::kFor: {
        XQTP_RETURN_NOT_OK(CheckArity(e, 2));
        XQTP_RETURN_NOT_OK(Check(*e.children[0], scope));
        XQTP_RETURN_NOT_OK(Bind(e.var, scope));
        odf_env_[e.var] = core::OdfProps::Singleton();
        if (e.pos_var != core::kNoVar) {
          if (e.pos_var == e.var) {
            return Violation("positional-binder",
                             "for binds the same variable " + NameOf(e.var) +
                                 " as both item and position");
          }
          XQTP_RETURN_NOT_OK(Bind(e.pos_var, scope));
          odf_env_[e.pos_var] = core::OdfProps::Singleton();
        }
        // The positional variable is visible only here — in the loop's
        // where clause and body, under its own binder.
        if (e.where) XQTP_RETURN_NOT_OK(Check(*e.where, scope));
        Status st = Check(*e.children[1], scope);
        scope->erase(e.var);
        if (e.pos_var != core::kNoVar) scope->erase(e.pos_var);
        return st;
      }
      case CoreKind::kIf:
        XQTP_RETURN_NOT_OK(CheckArity(e, 3));
        for (const CoreExprPtr& c : e.children) {
          XQTP_RETURN_NOT_OK(Check(*c, scope));
        }
        return Status::OK();
      case CoreKind::kDdo:
        XQTP_RETURN_NOT_OK(CheckArity(e, 1));
        return Check(*e.children[0], scope);
      case CoreKind::kFnCall: {
        int arity = core::CoreFnArity(e.fn);
        int have = static_cast<int>(e.children.size());
        if ((arity >= 0 && have != arity) || (arity < 0 && have < 2)) {
          return Violation(
              "fn-arity", std::string(core::CoreFnName(e.fn)) + " expects " +
                              (arity >= 0 ? std::to_string(arity)
                                          : std::string("at least 2")) +
                              " arguments, has " + std::to_string(have));
        }
        for (const CoreExprPtr& c : e.children) {
          XQTP_RETURN_NOT_OK(Check(*c, scope));
        }
        return Status::OK();
      }
      case CoreKind::kTypeswitch: {
        XQTP_RETURN_NOT_OK(CheckArity(e, 3));
        XQTP_RETURN_NOT_OK(Check(*e.children[0], scope));
        core::OdfProps it = core::ComputeOdf(*e.children[0], vars_, odf_env_);
        XQTP_RETURN_NOT_OK(Bind(e.case_var, scope));
        odf_env_[e.case_var] = it;
        XQTP_RETURN_NOT_OK(Check(*e.children[1], scope));
        scope->erase(e.case_var);
        XQTP_RETURN_NOT_OK(Bind(e.default_var, scope));
        odf_env_[e.default_var] = it;
        XQTP_RETURN_NOT_OK(Check(*e.children[2], scope));
        scope->erase(e.default_var);
        return Status::OK();
      }
      case CoreKind::kCompare:
      case CoreKind::kArith:
      case CoreKind::kAnd:
      case CoreKind::kOr:
        XQTP_RETURN_NOT_OK(CheckArity(e, 2));
        for (const CoreExprPtr& c : e.children) {
          XQTP_RETURN_NOT_OK(Check(*c, scope));
        }
        return Status::OK();
    }
    return Violation("core-arity", "unknown core node kind");
  }

  const VarTable& vars_;
  const CoreVerifyOptions& opts_;
  std::unordered_set<VarId> bound_anywhere_;
  core::OdfEnv odf_env_;
};

}  // namespace

Status VerifyCore(const core::CoreExpr& e, const core::VarTable& vars,
                  const CoreVerifyOptions& opts) {
  CoreVerifier verifier(vars, opts);
  Status st = verifier.Run(e);
  if (st.ok()) VerifyScope::ClearFiredTrail();
  return st;
}

}  // namespace xqtp::analysis
