// Tests for the relational shredding (the XPath accelerator encoding of
// the paper's last future-work item).
#include <gtest/gtest.h>

#include "engine/engine.h"
#include "storage/node_table.h"
#include "workload/member_gen.h"

namespace xqtp::storage {
namespace {

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto doc = engine_.LoadDocument(
        "d",
        "<r><a id=\"1\"><b>x</b><c/></a><a><b/><b/></a></r>");
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    doc_ = doc.value();
  }

  engine::Engine engine_;
  const xml::Document* doc_;
};

TEST_F(StorageTest, ColumnsMatchTheTree) {
  const NodeTable& t = NodeTable::For(*doc_);
  // doc, r, a, @id, b, text, c, a, b, b = 10 rows.
  EXPECT_EQ(t.size(), 10);
  // Row 0 is the document node.
  EXPECT_EQ(t.kind(0), xml::NodeKind::kDocument);
  EXPECT_EQ(t.parent(0), -1);
  EXPECT_EQ(t.level(0), 0);
  // Row ids are pre ranks and parents agree with the tree.
  const xml::Node* r = doc_->root()->first_child;
  EXPECT_EQ(t.row(r), 1);
  EXPECT_EQ(t.node(1), r);
  EXPECT_EQ(t.parent(t.row(r->first_child)), t.row(r));
  // Attribute rows carry the attribute kind and name.
  Symbol id = engine_.interner()->Lookup("id");
  ASSERT_EQ(t.AttributeRows(id).size(), 1u);
  EXPECT_EQ(t.kind(t.AttributeRows(id)[0]), xml::NodeKind::kAttribute);
}

TEST_F(StorageTest, TagRowsAreSorted) {
  const NodeTable& t = NodeTable::For(*doc_);
  Symbol b = engine_.interner()->Lookup("b");
  const std::vector<RowId>& rows = t.ElementRows(b);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_TRUE(std::is_sorted(rows.begin(), rows.end()));
  EXPECT_TRUE(t.ElementRows(engine_.interner()->Intern("zzz")).empty());
}

TEST_F(StorageTest, AncestorColumnTest) {
  const NodeTable& t = NodeTable::For(*doc_);
  const xml::Node* r = doc_->root()->first_child;
  const xml::Node* a1 = r->first_child;
  const xml::Node* b1 = a1->first_child;
  const xml::Node* a2 = a1->next_sibling;
  EXPECT_TRUE(t.IsAncestor(t.row(r), t.row(b1)));
  EXPECT_TRUE(t.IsAncestor(t.row(a1), t.row(b1)));
  EXPECT_FALSE(t.IsAncestor(t.row(a2), t.row(b1)));
  EXPECT_FALSE(t.IsAncestor(t.row(b1), t.row(a1)));
}

TEST_F(StorageTest, ExtensionIsCachedOnTheDocument) {
  const NodeTable& t1 = NodeTable::For(*doc_);
  const NodeTable& t2 = NodeTable::For(*doc_);
  EXPECT_EQ(&t1, &t2);
}

TEST_F(StorageTest, ShreddedEvaluationMatchesPointerBased) {
  engine::Engine e2;
  workload::MemberParams p;
  p.node_count = 15000;
  p.max_depth = 6;
  p.num_tags = 20;
  p.plant_twigs = 10;
  const xml::Document* d =
      e2.AddDocument("m", workload::GenerateMember(p, e2.interner()));
  const char* queries[] = {
      "$input//t01[t02]/t03", "$input/desc::t04[desc::t03]",
      "$input//t01/t02", "$input//t05[t06][t07]",
      "$input//node()/t01",
  };
  for (const char* q : queries) {
    auto cq = e2.Compile(q);
    ASSERT_TRUE(cq.ok()) << q;
    engine::Engine::GlobalMap globals{{"input", {xdm::Item(d->root())}}};
    auto ref = e2.Execute(*cq, globals, exec::PatternAlgo::kStaircase);
    auto sh = e2.Execute(*cq, globals, exec::PatternAlgo::kShredded);
    ASSERT_TRUE(ref.ok() && sh.ok()) << q;
    ASSERT_EQ(ref->size(), sh->size()) << q;
    for (size_t i = 0; i < ref->size(); ++i) {
      EXPECT_TRUE((*ref)[i] == (*sh)[i]) << q << " item " << i;
    }
  }
}

TEST_F(StorageTest, ShreddedPositionalSteps) {
  engine::CompileOptions opts;
  opts.positional_patterns = true;
  auto cq = engine_.Compile("$d/r/a[2]/b[1]", opts);
  ASSERT_TRUE(cq.ok());
  engine::Engine::GlobalMap globals{{"d", {xdm::Item(doc_->root())}}};
  auto sh = engine_.Execute(*cq, globals, exec::PatternAlgo::kShredded);
  auto nl = engine_.Execute(*cq, globals, exec::PatternAlgo::kNLJoin);
  ASSERT_TRUE(sh.ok() && nl.ok());
  ASSERT_EQ(sh->size(), 1u);
  EXPECT_TRUE((*sh)[0] == (*nl)[0]);
}

}  // namespace
}  // namespace xqtp::storage
