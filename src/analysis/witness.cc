#include "analysis/witness.h"

#include <cstdint>
#include <utility>

#include "xml/parser.h"
#include "xml/serializer.h"

namespace xqtp::analysis {

namespace {

// Deterministic splitmix64; std::uniform_int_distribution is
// implementation-defined, and witness generation must be byte-identical
// across standard libraries (artifacts name docs by corpus index).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform-ish integer in [lo, hi].
  int Range(int lo, int hi) {
    return lo + static_cast<int>(Next() % static_cast<uint64_t>(hi - lo + 1));
  }

  bool Chance(int percent) { return Range(1, 100) <= percent; }

 private:
  uint64_t state_;
};

/// Emits a random element over the corpus alphabet; biased toward
/// duplicate siblings and same-tag recursion, the shapes on which the
/// pattern algorithms are easiest to get wrong.
void GenElement(Rng* rng, int depth, int* budget, std::string* out) {
  const std::vector<std::string>& tags = WitnessCorpus::TagAlphabet();
  const std::string& tag = tags[rng->Range(0, static_cast<int>(tags.size()) - 1)];
  --*budget;
  *out += "<" + tag;
  if (rng->Chance(25)) *out += " id=\"" + std::to_string(rng->Range(1, 3)) + "\"";
  if (depth <= 0 || *budget <= 0 || rng->Chance(20)) {
    *out += "/>";
    return;
  }
  *out += ">";
  if (rng->Chance(30)) *out += std::to_string(rng->Range(1, 3));
  int kids = rng->Range(1, 3);
  for (int i = 0; i < kids && *budget > 0; ++i) {
    GenElement(rng, depth - 1, budget, out);
    // Extra sibling at the same depth with probability 1/3, biasing the
    // corpus toward duplicate-sibling runs.
    if (rng->Chance(33) && *budget > 0) {
      GenElement(rng, depth - 1, budget, out);
    }
  }
  if (rng->Chance(15)) *out += "x";
  *out += "</" + tag + ">";
}

std::string GenDoc(uint64_t seed, int node_budget) {
  Rng rng(seed);
  std::string out = "<r>";
  int budget = node_budget;
  while (budget > 0) GenElement(&rng, 3, &budget, &out);
  out += "</r>";
  return out;
}

}  // namespace

const std::vector<std::string>& WitnessCorpus::TagAlphabet() {
  static const std::vector<std::string> kTags = {"a", "b", "c", "d", "e"};
  return kTags;
}

void WitnessCorpus::Add(std::string name, std::string xml,
                        StringInterner* interner) {
  auto parsed = xml::Parse(xml, interner);
  // The curated texts are constants and the generator emits well-formed
  // XML; a parse failure here is a programming error, so just drop the
  // document rather than poisoning every equivalence check.
  if (!parsed.ok()) return;
  WitnessDoc w;
  w.name = std::move(name);
  w.xml = std::move(xml);
  w.doc = std::move(parsed).value();
  docs_.push_back(std::move(w));
}

WitnessCorpus::WitnessCorpus(StringInterner* interner) {
  // Same-tag recursion: descendant steps see ancestor-related matches, so
  // a dropped ddo or a non-deduplicating evaluator diverges here.
  Add("recursion",
      "<r><a><a><b/><a><b/><b/></a></a><b/></a><a><b/></a></r>", interner);
  // Duplicate siblings with identical subtrees: binding deduplication and
  // document-order tie-breaking edge cases.
  Add("dup-siblings",
      "<r><a><b><c/></b><b><c/></b><b><c/></b></a>"
      "<a><b><c/></b><b><c/></b></a></r>",
      interner);
  // Mixed content: text between elements shifts sibling positions and
  // feeds string-value–sensitive predicates.
  Add("mixed-content",
      "<r><a>one<b>1</b>two<b>2</b><c>x</c>three</a><a>four<c>y</c></a></r>",
      interner);
  // Empty matches: only the root element exists, so every generated path
  // over the alphabet returns the empty sequence.
  Add("empty", "<r/>", interner);
  // Positional runs: sibling runs of one tag interrupted by other tags,
  // the shape on which per-parent position counting goes wrong.
  Add("positional",
      "<r><a><b id=\"1\"/><b id=\"2\"/><c/><b id=\"3\"/><b id=\"4\"/></a>"
      "<a><c/><b id=\"5\"/></a><a><b id=\"6\"/></a></r>",
      interner);
  // Deep single-path chain with a repeated a/b spine: stresses stack depth
  // and ancestor bookkeeping in the streaming evaluators.
  Add("deep-chain",
      "<r><a><b><a><b><a><b><c>1</c></b></a></b></a></b></a></r>", interner);
  // Wide fan-out: every alphabet tag as a sibling, twice.
  Add("wide",
      "<r><a/><b/><c/><d/><e/><a><c/></a><b><d/></b><c><e/></c><d/><e/></r>",
      interner);
  // Attribute-heavy: duplicate attribute values across levels.
  Add("attrs",
      "<r><a id=\"1\"><b id=\"1\"/><b id=\"2\"/></a>"
      "<a id=\"2\"><b id=\"1\"/></a></r>",
      interner);
  // Typed text values: numeric and non-numeric strings for comparisons.
  Add("text-values",
      "<r><a><b>1</b><b>2</b><b>x</b></a><a><b>2</b><c>1</c></a></r>",
      interner);
  // Deterministically generated trees (fixed seeds, never rolled): small,
  // medium, larger.
  Add("gen-20", GenDoc(/*seed=*/101, /*node_budget=*/20), interner);
  Add("gen-40", GenDoc(/*seed=*/202, /*node_budget=*/40), interner);
  Add("gen-80", GenDoc(/*seed=*/303, /*node_budget=*/80), interner);
}

namespace {

// ---- shrinker --------------------------------------------------------------

/// Mutable mirror of a parsed document, cheap to copy and edit. Text and
/// elements are both nodes (is_text discriminates).
struct MutNode {
  bool is_text = false;
  std::string tag_or_text;
  std::vector<std::pair<std::string, std::string>> attrs;
  std::vector<MutNode> children;
};

MutNode FromXml(const xml::Node* n, const StringInterner& interner) {
  MutNode m;
  if (n->IsText()) {
    m.is_text = true;
    m.tag_or_text = n->text;
    return m;
  }
  m.tag_or_text = interner.NameOf(n->name);
  for (const xml::Node* a : n->attributes) {
    m.attrs.emplace_back(interner.NameOf(a->name), a->text);
  }
  for (const xml::Node* c = n->first_child; c != nullptr;
       c = c->next_sibling) {
    m.children.push_back(FromXml(c, interner));
  }
  return m;
}

void SerializeMut(const MutNode& m, std::string* out) {
  if (m.is_text) {
    *out += xml::EscapeText(m.tag_or_text);
    return;
  }
  *out += "<" + m.tag_or_text;
  for (const auto& [name, value] : m.attrs) {
    *out += " " + name + "=\"" + xml::EscapeText(value) + "\"";
  }
  if (m.children.empty()) {
    *out += "/>";
    return;
  }
  *out += ">";
  for (const MutNode& c : m.children) SerializeMut(c, out);
  *out += "</" + m.tag_or_text + ">";
}

/// Parents of every node below the root, in DFS order (the root itself is
/// never an edit target: deleting it would leave no document).
void CollectParents(MutNode* n, std::vector<MutNode*>* out) {
  out->push_back(n);
  for (MutNode& c : n->children) {
    if (!c.is_text) CollectParents(&c, out);
  }
}

/// One kind of structural edit, tried greedily in order.
enum class EditKind { kDeleteChild, kHoistChild, kDropAttr };

/// Applies edit (kind, parent DFS index, child/attr index) to a copy of
/// `root`; returns false when the indices no longer exist.
bool ApplyEdit(MutNode* root, EditKind kind, size_t parent_idx, size_t idx) {
  std::vector<MutNode*> parents;
  CollectParents(root, &parents);
  if (parent_idx >= parents.size()) return false;
  MutNode* p = parents[parent_idx];
  switch (kind) {
    case EditKind::kDeleteChild:
      if (idx >= p->children.size()) return false;
      p->children.erase(p->children.begin() + static_cast<long>(idx));
      return true;
    case EditKind::kHoistChild: {
      if (idx >= p->children.size()) return false;
      MutNode victim = std::move(p->children[idx]);
      if (victim.is_text) return false;
      p->children.erase(p->children.begin() + static_cast<long>(idx));
      p->children.insert(p->children.begin() + static_cast<long>(idx),
                         std::make_move_iterator(victim.children.begin()),
                         std::make_move_iterator(victim.children.end()));
      return true;
    }
    case EditKind::kDropAttr:
      if (idx >= p->attrs.size()) return false;
      p->attrs.erase(p->attrs.begin() + static_cast<long>(idx));
      return true;
  }
  return false;
}

}  // namespace

std::string ShrinkWitness(const std::string& xml_text,
                          StringInterner* interner,
                          const WitnessPredicate& pred, int max_checks) {
  auto parsed = xml::Parse(xml_text, interner);
  if (!parsed.ok()) return xml_text;
  MutNode root = FromXml(parsed.value()->root()->first_child != nullptr
                             ? parsed.value()->root()->first_child
                             : parsed.value()->root(),
                         *interner);

  int checks = 0;
  auto still_diverges = [&](const MutNode& candidate,
                            std::string* serialized) -> bool {
    if (checks >= max_checks) return false;
    ++checks;
    serialized->clear();
    SerializeMut(candidate, serialized);
    auto doc = xml::Parse(*serialized, interner);
    if (!doc.ok()) return false;
    return pred(*doc.value());
  };

  // Greedy fixpoint: restart the edit scan after each accepted edit so
  // indices stay valid; each accepted edit strictly shrinks the tree, so
  // this terminates.
  const EditKind kKinds[] = {EditKind::kDeleteChild, EditKind::kHoistChild,
                             EditKind::kDropAttr};
  bool progress = true;
  std::string scratch;
  while (progress && checks < max_checks) {
    progress = false;
    std::vector<MutNode*> parents;
    CollectParents(&root, &parents);
    for (EditKind kind : kKinds) {
      for (size_t pi = 0; pi < parents.size() && !progress; ++pi) {
        size_t fan = kind == EditKind::kDropAttr ? parents[pi]->attrs.size()
                                                 : parents[pi]->children.size();
        for (size_t ci = 0; ci < fan; ++ci) {
          MutNode candidate = root;
          if (!ApplyEdit(&candidate, kind, pi, ci)) continue;
          if (still_diverges(candidate, &scratch)) {
            root = std::move(candidate);
            progress = true;
            break;
          }
        }
      }
      if (progress) break;
    }
  }

  std::string out;
  SerializeMut(root, &out);
  return out;
}

}  // namespace xqtp::analysis
