
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/compile.cc" "src/CMakeFiles/xqtp.dir/algebra/compile.cc.o" "gcc" "src/CMakeFiles/xqtp.dir/algebra/compile.cc.o.d"
  "/root/repo/src/algebra/dot.cc" "src/CMakeFiles/xqtp.dir/algebra/dot.cc.o" "gcc" "src/CMakeFiles/xqtp.dir/algebra/dot.cc.o.d"
  "/root/repo/src/algebra/ops.cc" "src/CMakeFiles/xqtp.dir/algebra/ops.cc.o" "gcc" "src/CMakeFiles/xqtp.dir/algebra/ops.cc.o.d"
  "/root/repo/src/algebra/optimize.cc" "src/CMakeFiles/xqtp.dir/algebra/optimize.cc.o" "gcc" "src/CMakeFiles/xqtp.dir/algebra/optimize.cc.o.d"
  "/root/repo/src/algebra/printer.cc" "src/CMakeFiles/xqtp.dir/algebra/printer.cc.o" "gcc" "src/CMakeFiles/xqtp.dir/algebra/printer.cc.o.d"
  "/root/repo/src/common/exec_stats.cc" "src/CMakeFiles/xqtp.dir/common/exec_stats.cc.o" "gcc" "src/CMakeFiles/xqtp.dir/common/exec_stats.cc.o.d"
  "/root/repo/src/common/interner.cc" "src/CMakeFiles/xqtp.dir/common/interner.cc.o" "gcc" "src/CMakeFiles/xqtp.dir/common/interner.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/xqtp.dir/common/status.cc.o" "gcc" "src/CMakeFiles/xqtp.dir/common/status.cc.o.d"
  "/root/repo/src/core/ast.cc" "src/CMakeFiles/xqtp.dir/core/ast.cc.o" "gcc" "src/CMakeFiles/xqtp.dir/core/ast.cc.o.d"
  "/root/repo/src/core/normalize.cc" "src/CMakeFiles/xqtp.dir/core/normalize.cc.o" "gcc" "src/CMakeFiles/xqtp.dir/core/normalize.cc.o.d"
  "/root/repo/src/core/odf.cc" "src/CMakeFiles/xqtp.dir/core/odf.cc.o" "gcc" "src/CMakeFiles/xqtp.dir/core/odf.cc.o.d"
  "/root/repo/src/core/printer.cc" "src/CMakeFiles/xqtp.dir/core/printer.cc.o" "gcc" "src/CMakeFiles/xqtp.dir/core/printer.cc.o.d"
  "/root/repo/src/core/rewrite.cc" "src/CMakeFiles/xqtp.dir/core/rewrite.cc.o" "gcc" "src/CMakeFiles/xqtp.dir/core/rewrite.cc.o.d"
  "/root/repo/src/core/typing.cc" "src/CMakeFiles/xqtp.dir/core/typing.cc.o" "gcc" "src/CMakeFiles/xqtp.dir/core/typing.cc.o.d"
  "/root/repo/src/engine/engine.cc" "src/CMakeFiles/xqtp.dir/engine/engine.cc.o" "gcc" "src/CMakeFiles/xqtp.dir/engine/engine.cc.o.d"
  "/root/repo/src/exec/core_interp.cc" "src/CMakeFiles/xqtp.dir/exec/core_interp.cc.o" "gcc" "src/CMakeFiles/xqtp.dir/exec/core_interp.cc.o.d"
  "/root/repo/src/exec/cost_model.cc" "src/CMakeFiles/xqtp.dir/exec/cost_model.cc.o" "gcc" "src/CMakeFiles/xqtp.dir/exec/cost_model.cc.o.d"
  "/root/repo/src/exec/evaluator.cc" "src/CMakeFiles/xqtp.dir/exec/evaluator.cc.o" "gcc" "src/CMakeFiles/xqtp.dir/exec/evaluator.cc.o.d"
  "/root/repo/src/exec/fn_lib.cc" "src/CMakeFiles/xqtp.dir/exec/fn_lib.cc.o" "gcc" "src/CMakeFiles/xqtp.dir/exec/fn_lib.cc.o.d"
  "/root/repo/src/exec/nl_pattern.cc" "src/CMakeFiles/xqtp.dir/exec/nl_pattern.cc.o" "gcc" "src/CMakeFiles/xqtp.dir/exec/nl_pattern.cc.o.d"
  "/root/repo/src/exec/staircase_pattern.cc" "src/CMakeFiles/xqtp.dir/exec/staircase_pattern.cc.o" "gcc" "src/CMakeFiles/xqtp.dir/exec/staircase_pattern.cc.o.d"
  "/root/repo/src/exec/stream_pattern.cc" "src/CMakeFiles/xqtp.dir/exec/stream_pattern.cc.o" "gcc" "src/CMakeFiles/xqtp.dir/exec/stream_pattern.cc.o.d"
  "/root/repo/src/exec/tuple.cc" "src/CMakeFiles/xqtp.dir/exec/tuple.cc.o" "gcc" "src/CMakeFiles/xqtp.dir/exec/tuple.cc.o.d"
  "/root/repo/src/exec/twig_pattern.cc" "src/CMakeFiles/xqtp.dir/exec/twig_pattern.cc.o" "gcc" "src/CMakeFiles/xqtp.dir/exec/twig_pattern.cc.o.d"
  "/root/repo/src/exec/twigstack_pattern.cc" "src/CMakeFiles/xqtp.dir/exec/twigstack_pattern.cc.o" "gcc" "src/CMakeFiles/xqtp.dir/exec/twigstack_pattern.cc.o.d"
  "/root/repo/src/pattern/tree_pattern.cc" "src/CMakeFiles/xqtp.dir/pattern/tree_pattern.cc.o" "gcc" "src/CMakeFiles/xqtp.dir/pattern/tree_pattern.cc.o.d"
  "/root/repo/src/storage/node_table.cc" "src/CMakeFiles/xqtp.dir/storage/node_table.cc.o" "gcc" "src/CMakeFiles/xqtp.dir/storage/node_table.cc.o.d"
  "/root/repo/src/workload/member_gen.cc" "src/CMakeFiles/xqtp.dir/workload/member_gen.cc.o" "gcc" "src/CMakeFiles/xqtp.dir/workload/member_gen.cc.o.d"
  "/root/repo/src/workload/variants.cc" "src/CMakeFiles/xqtp.dir/workload/variants.cc.o" "gcc" "src/CMakeFiles/xqtp.dir/workload/variants.cc.o.d"
  "/root/repo/src/workload/xmark_gen.cc" "src/CMakeFiles/xqtp.dir/workload/xmark_gen.cc.o" "gcc" "src/CMakeFiles/xqtp.dir/workload/xmark_gen.cc.o.d"
  "/root/repo/src/workload/xmark_queries.cc" "src/CMakeFiles/xqtp.dir/workload/xmark_queries.cc.o" "gcc" "src/CMakeFiles/xqtp.dir/workload/xmark_queries.cc.o.d"
  "/root/repo/src/xdm/item.cc" "src/CMakeFiles/xqtp.dir/xdm/item.cc.o" "gcc" "src/CMakeFiles/xqtp.dir/xdm/item.cc.o.d"
  "/root/repo/src/xdm/sequence_ops.cc" "src/CMakeFiles/xqtp.dir/xdm/sequence_ops.cc.o" "gcc" "src/CMakeFiles/xqtp.dir/xdm/sequence_ops.cc.o.d"
  "/root/repo/src/xml/document.cc" "src/CMakeFiles/xqtp.dir/xml/document.cc.o" "gcc" "src/CMakeFiles/xqtp.dir/xml/document.cc.o.d"
  "/root/repo/src/xml/index.cc" "src/CMakeFiles/xqtp.dir/xml/index.cc.o" "gcc" "src/CMakeFiles/xqtp.dir/xml/index.cc.o.d"
  "/root/repo/src/xml/node.cc" "src/CMakeFiles/xqtp.dir/xml/node.cc.o" "gcc" "src/CMakeFiles/xqtp.dir/xml/node.cc.o.d"
  "/root/repo/src/xml/parser.cc" "src/CMakeFiles/xqtp.dir/xml/parser.cc.o" "gcc" "src/CMakeFiles/xqtp.dir/xml/parser.cc.o.d"
  "/root/repo/src/xml/serializer.cc" "src/CMakeFiles/xqtp.dir/xml/serializer.cc.o" "gcc" "src/CMakeFiles/xqtp.dir/xml/serializer.cc.o.d"
  "/root/repo/src/xquery/ast.cc" "src/CMakeFiles/xqtp.dir/xquery/ast.cc.o" "gcc" "src/CMakeFiles/xqtp.dir/xquery/ast.cc.o.d"
  "/root/repo/src/xquery/lexer.cc" "src/CMakeFiles/xqtp.dir/xquery/lexer.cc.o" "gcc" "src/CMakeFiles/xqtp.dir/xquery/lexer.cc.o.d"
  "/root/repo/src/xquery/parser.cc" "src/CMakeFiles/xqtp.dir/xquery/parser.cc.o" "gcc" "src/CMakeFiles/xqtp.dir/xquery/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
