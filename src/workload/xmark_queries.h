// The XMark benchmark queries, adapted to the supported XQuery fragment
// (no element construction, no joins on values across variables beyond
// general comparisons). Used by tests and examples as a realistic query
// corpus over the xmark_gen documents.
#ifndef XQTP_WORKLOAD_XMARK_QUERIES_H_
#define XQTP_WORKLOAD_XMARK_QUERIES_H_

#include <string>
#include <vector>

namespace xqtp::workload {

struct XmarkQuery {
  std::string id;           ///< e.g. "XQ1"
  std::string description;  ///< what the original XMark query asks
  std::string text;         ///< the adapted query
};

/// The adapted corpus, in a stable order.
const std::vector<XmarkQuery>& XmarkQueryCorpus();

}  // namespace xqtp::workload

#endif  // XQTP_WORKLOAD_XMARK_QUERIES_H_
