#include "core/rewrite.h"

#include <unordered_set>

#include "analysis/core_verifier.h"
#include "analysis/equiv_checker.h"
#include "common/fault_injection.h"
#include "core/odf.h"
#include "core/typing.h"
#include "exec/governor.h"

namespace xqtp::core {

namespace {

/// The rewrite rule families recurse once per Core nesting level; a tree
/// deeper than this fails cleanly (kResourceExhausted) before the first
/// family risks the C++ stack. Computed iteratively — the checker itself
/// must not recurse.
constexpr int kMaxRewriteDepth = 2500;

int CoreDepth(const CoreExpr& root) {
  int max_depth = 0;
  std::vector<std::pair<const CoreExpr*, int>> stack{{&root, 1}};
  while (!stack.empty()) {
    auto [e, d] = stack.back();
    stack.pop_back();
    if (d > max_depth) max_depth = d;
    for (const CoreExprPtr& c : e->children) {
      stack.push_back({c.get(), d + 1});
    }
    if (e->where) stack.push_back({e->where.get(), d + 1});
  }
  return max_depth;
}

/// True iff `v` appears as the context variable of some step in `e` —
/// such occurrences can only be substituted by another variable.
bool UsedAsStepContext(const CoreExpr& e, VarId v) {
  if (e.kind == CoreKind::kStep && e.var == v) return true;
  for (const CoreExprPtr& c : e.children) {
    if (UsedAsStepContext(*c, v)) return true;
  }
  if (e.where && UsedAsStepContext(*e.where, v)) return true;
  return false;
}

// ---- Type rewritings -------------------------------------------------------

void TypeSimplify(CoreExprPtr* e, const VarTable& vars, TypeEnv* env,
                  bool* changed) {
  CoreExpr& n = **e;
  switch (n.kind) {
    case CoreKind::kLet: {
      TypeSimplify(&n.children[0], vars, env, changed);
      (*env)[n.var] = InferType(*n.children[0], vars, *env);
      TypeSimplify(&n.children[1], vars, env, changed);
      break;
    }
    case CoreKind::kFor: {
      TypeSimplify(&n.children[0], vars, env, changed);
      (*env)[n.var] = InferType(*n.children[0], vars, *env);
      if (n.pos_var != kNoVar) (*env)[n.pos_var] = AbstractType::kNumeric;
      if (n.where) TypeSimplify(&n.where, vars, env, changed);
      TypeSimplify(&n.children[1], vars, env, changed);
      break;
    }
    case CoreKind::kTypeswitch: {
      TypeSimplify(&n.children[0], vars, env, changed);
      AbstractType it = InferType(*n.children[0], vars, *env);
      (*env)[n.case_var] = AbstractType::kNumeric;
      (*env)[n.default_var] = it;
      TypeSimplify(&n.children[1], vars, env, changed);
      TypeSimplify(&n.children[2], vars, env, changed);
      // Paper rule 1: the numeric case can never fire -> keep default only.
      if (DefinitelyNotNumeric(it)) {
        CoreExprPtr repl = MakeLet(n.default_var, std::move(n.children[0]),
                                   std::move(n.children[2]));
        *e = std::move(repl);
        *changed = true;
        return;
      }
      // Paper rule 2: the numeric case always fires -> bypass typeswitch.
      if (DefinitelyNumeric(it)) {
        CoreExprPtr repl = MakeLet(n.case_var, std::move(n.children[0]),
                                   std::move(n.children[1]));
        *e = std::move(repl);
        *changed = true;
        return;
      }
      break;
    }
    default:
      for (CoreExprPtr& c : n.children) TypeSimplify(&c, vars, env, changed);
      if (n.where) TypeSimplify(&n.where, vars, env, changed);
      break;
  }
  // fn:boolean on an already-boolean expression is the identity.
  CoreExpr& m = **e;
  if (m.kind == CoreKind::kFnCall && m.fn == CoreFn::kBoolean &&
      m.children.size() == 1 &&
      InferType(*m.children[0], vars, *env) == AbstractType::kBoolean) {
    CoreExprPtr inner = std::move(m.children[0]);
    *e = std::move(inner);
    *changed = true;
  }
}

// ---- FLWOR rewritings ------------------------------------------------------

/// Variables statically known to be bound to exactly one item: for-loop
/// variables and query globals (singleton documents by contract).
using SingletonSet = std::unordered_set<VarId>;

void FlworSimplify(CoreExprPtr* e, SingletonSet* singletons, bool* changed) {
  CoreExpr& n = **e;
  if (n.kind == CoreKind::kFor) {
    singletons->insert(n.var);
    if (n.pos_var != kNoVar) singletons->insert(n.pos_var);
  }
  for (CoreExprPtr& c : n.children) {
    FlworSimplify(&c, singletons, changed);
  }
  if (n.where) FlworSimplify(&n.where, singletons, changed);

  switch (n.kind) {
    case CoreKind::kLet: {
      CoreExpr& binding = *n.children[0];
      CoreExpr& body = *n.children[1];
      int uses = CountUses(body, n.var);
      // Rule: unused let binding disappears.
      if (uses == 0) {
        CoreExprPtr repl = std::move(n.children[1]);
        *e = std::move(repl);
        *changed = true;
        return;
      }
      // Rule: inline variables and literals always; other bindings only
      // when used exactly once. Step contexts accept only variables.
      bool trivially_inlinable = binding.kind == CoreKind::kVar ||
                                 binding.kind == CoreKind::kLiteral;
      bool can_place = binding.kind == CoreKind::kVar ||
                       !UsedAsStepContext(body, n.var);
      if ((trivially_inlinable || uses == 1) && can_place) {
        Substitute(&body, n.var, binding);
        CoreExprPtr repl = std::move(n.children[1]);
        *e = std::move(repl);
        *changed = true;
        return;
      }
      break;
    }
    case CoreKind::kFor: {
      // Rule: drop an unused positional variable.
      if (n.pos_var != kNoVar) {
        int uses = CountUses(*n.children[1], n.pos_var);
        if (n.where) uses += CountUses(*n.where, n.pos_var);
        if (uses == 0) {
          n.pos_var = kNoVar;
          *changed = true;
        }
      }
      // where fn:boolean(X) === where X (where applies the EBV anyway).
      if (n.where && n.where->kind == CoreKind::kFnCall &&
          n.where->fn == CoreFn::kBoolean && n.where->children.size() == 1) {
        CoreExprPtr inner = std::move(n.where->children[0]);
        n.where = std::move(inner);
        *changed = true;
      }
      // for $x in E return $x (no where / position) === E.
      if (n.pos_var == kNoVar && !n.where &&
          n.children[1]->kind == CoreKind::kVar &&
          n.children[1]->var == n.var) {
        CoreExprPtr repl = std::move(n.children[0]);
        *e = std::move(repl);
        *changed = true;
        return;
      }
      // for $x in $v return body === body[$x := $v] when $v is a for
      // variable (a singleton by construction): iterating a one-item
      // sequence is variable renaming. This collapses the focus loops
      // that path normalization builds over FLWOR variables (query Q1c).
      // Globals are excluded deliberately: the paper's canonical form
      // keeps the bottom "for $dot in $d" loop (it becomes the plan's
      // MapFromItem source).
      if (n.pos_var == kNoVar && !n.where &&
          n.children[0]->kind == CoreKind::kVar &&
          singletons->count(n.children[0]->var) > 0) {
        Substitute(n.children[1].get(), n.var, *n.children[0]);
        CoreExprPtr repl = std::move(n.children[1]);
        *e = std::move(repl);
        *changed = true;
        return;
      }
      break;
    }
    case CoreKind::kIf: {
      // if (true) then A else B === A; if (false) === B.
      CoreExpr& cond = *n.children[0];
      if (cond.kind == CoreKind::kLiteral && cond.literal.IsBoolean()) {
        CoreExprPtr repl = std::move(n.children[cond.literal.boolean() ? 1 : 2]);
        *e = std::move(repl);
        *changed = true;
        return;
      }
      break;
    }
    default:
      break;
  }
}

// ---- Document order rewritings ---------------------------------------------

/// Context insensitivity: an enclosing operator that will re-establish
/// document order (resp. discard duplicates) lets us strip inner ddo calls
/// even when their input is not statically ordered/duplicate-free.
struct DdoCtx {
  bool order_insensitive = false;
  bool dup_insensitive = false;
};

void StripDdo(CoreExprPtr* e, DdoCtx ctx, const VarTable& vars, OdfEnv* env,
              bool* changed) {
  CoreExpr& n = **e;
  switch (n.kind) {
    case CoreKind::kDdo: {
      StripDdo(&n.children[0], {true, true}, vars, env, changed);
      OdfProps p = ComputeOdf(*n.children[0], vars, *env);
      if (p.OrderedDupFree() ||
          (ctx.order_insensitive && ctx.dup_insensitive)) {
        CoreExprPtr repl = std::move(n.children[0]);
        *e = std::move(repl);
        *changed = true;
      }
      return;
    }
    case CoreKind::kLet: {
      // The binding may be used several times in contexts with different
      // sensitivities; stay conservative (only statically-ODF ddos go).
      StripDdo(&n.children[0], {false, false}, vars, env, changed);
      (*env)[n.var] = ComputeOdf(*n.children[0], vars, *env);
      StripDdo(&n.children[1], ctx, vars, env, changed);
      return;
    }
    case CoreKind::kFor: {
      // Iterator order determines output order; iterator duplicates
      // duplicate outputs. Both are fine if the context does not care —
      // unless a positional variable observes the iteration.
      bool no_pos = n.pos_var == kNoVar;
      StripDdo(&n.children[0],
               {ctx.order_insensitive && no_pos,
                ctx.dup_insensitive && no_pos},
               vars, env, changed);
      (*env)[n.var] = OdfProps::Singleton();
      if (n.pos_var != kNoVar) (*env)[n.pos_var] = OdfProps::Singleton();
      // The where clause is consumed through the effective boolean value:
      // fully insensitive.
      if (n.where) StripDdo(&n.where, {true, true}, vars, env, changed);
      StripDdo(&n.children[1], ctx, vars, env, changed);
      return;
    }
    case CoreKind::kIf:
      StripDdo(&n.children[0], {true, true}, vars, env, changed);
      StripDdo(&n.children[1], ctx, vars, env, changed);
      StripDdo(&n.children[2], ctx, vars, env, changed);
      return;
    case CoreKind::kFnCall: {
      DdoCtx arg_ctx{false, false};
      switch (n.fn) {
        case CoreFn::kBoolean:
        case CoreFn::kNot:
        case CoreFn::kEmpty:
        case CoreFn::kExists:
          arg_ctx = {true, true};  // existence tests
          break;
        case CoreFn::kCount:
        case CoreFn::kSum:
          arg_ctx = {true, false};  // order-insensitive, duplicate-sensitive
          break;
        case CoreFn::kRoot:
        case CoreFn::kData:
        case CoreFn::kString:
        case CoreFn::kNumber:
        case CoreFn::kStringLength:
        case CoreFn::kConcat:
        case CoreFn::kContains:
        case CoreFn::kStartsWith:
          arg_ctx = {false, false};
          break;
      }
      for (CoreExprPtr& c : n.children) {
        StripDdo(&c, arg_ctx, vars, env, changed);
      }
      return;
    }
    case CoreKind::kArith:
      // Operands must be singletons; removing a ddo could change an
      // operand's multiplicity (and hence error behaviour) — stay
      // conservative.
      for (CoreExprPtr& c : n.children) {
        StripDdo(&c, {false, false}, vars, env, changed);
      }
      return;
    case CoreKind::kCompare:
      // General comparisons are existential over both operands.
      for (CoreExprPtr& c : n.children) {
        StripDdo(&c, {true, true}, vars, env, changed);
      }
      return;
    case CoreKind::kAnd:
    case CoreKind::kOr:
      for (CoreExprPtr& c : n.children) {
        StripDdo(&c, {true, true}, vars, env, changed);
      }
      return;
    case CoreKind::kTypeswitch: {
      StripDdo(&n.children[0], {false, false}, vars, env, changed);
      OdfProps it = ComputeOdf(*n.children[0], vars, *env);
      (*env)[n.case_var] = it;
      (*env)[n.default_var] = it;
      StripDdo(&n.children[1], ctx, vars, env, changed);
      StripDdo(&n.children[2], ctx, vars, env, changed);
      return;
    }
    case CoreKind::kSequence:
      for (CoreExprPtr& c : n.children) StripDdo(&c, ctx, vars, env, changed);
      return;
    case CoreKind::kVar:
    case CoreKind::kLiteral:
    case CoreKind::kStep:
      return;
  }
}

// ---- Loop split ------------------------------------------------------------

void LoopSplit(CoreExprPtr* e, bool* changed) {
  CoreExpr& n = **e;
  for (CoreExprPtr& c : n.children) LoopSplit(&c, changed);
  if (n.where) LoopSplit(&n.where, changed);

  if (n.kind != CoreKind::kFor) return;
  if (n.pos_var != kNoVar) return;
  CoreExprPtr& body = n.children[1];
  if (body->kind != CoreKind::kFor) return;
  CoreExpr& inner = *body;
  // The paper's guard: the rule does not hold when a positional variable
  // observes either loop.
  if (inner.pos_var != kNoVar) return;
  // $x must leave scope of the inner condition and return expression.
  if (Uses(*inner.children[1], n.var)) return;
  if (inner.where && Uses(*inner.where, n.var)) return;

  //   for $x in E1 (where W1)? return for $y in E2 (where W2)? return E3
  // becomes
  //   for $y in (for $x in E1 (where W1)? return E2) (where W2)? return E3
  CoreExprPtr new_iter =
      MakeFor(n.var, kNoVar, std::move(n.children[0]), std::move(n.where),
              std::move(inner.children[0]));
  CoreExprPtr repl =
      MakeFor(inner.var, kNoVar, std::move(new_iter), std::move(inner.where),
              std::move(inner.children[1]));
  *e = std::move(repl);
  *changed = true;
  // The rebuilt node may enable another split directly above/below.
  LoopSplit(e, changed);
}

// ---- test-only unsound rule ------------------------------------------------

/// Intentionally wrong rewrite behind RewriteOptions::
/// unsound_ddo_strip_for_testing: fs:ddo(E) -> E with no ordered/
/// duplicate-free justification. Exists so the translation-validation
/// oracle's own tests have a realistic rule bug to detect.
void UnsoundStripAllDdo(CoreExprPtr* e, bool* changed) {
  CoreExpr& n = **e;
  for (CoreExprPtr& c : n.children) UnsoundStripAllDdo(&c, changed);
  if (n.where) UnsoundStripAllDdo(&n.where, changed);
  if (n.kind == CoreKind::kDdo) {
    CoreExprPtr repl = std::move(n.children[0]);
    *e = std::move(repl);
    *changed = true;
  }
}

}  // namespace

Result<CoreExprPtr> RewriteToTPNF(CoreExprPtr e, VarTable* vars,
                                  const RewriteOptions& opts) {
  if (int depth = CoreDepth(*e); depth > kMaxRewriteDepth) {
    return Status::ResourceExhausted(
        "Core expression nesting depth " + std::to_string(depth) +
        " exceeds the rewriter limit of " + std::to_string(kMaxRewriteDepth));
  }
  // Verifies the tree after a rule family changed it, attributing any
  // violation to that family via the ambient VerifyScope; with an
  // EquivChecker attached, additionally validates that the family
  // preserved semantics on the witness corpus (`before` is the snapshot
  // taken just before the family ran; null when no checker is attached).
  auto checkpoint = [&](analysis::VerifyScope* scope, bool fam_changed,
                        bool* changed, const CoreExprPtr& before) -> Status {
    if (!fam_changed) return Status::OK();
    scope->MarkFired();
    *changed = true;
    if (opts.verify) {
      XQTP_RETURN_NOT_OK(analysis::VerifyCore(*e, *vars));
    }
    if (opts.equiv != nullptr && before != nullptr) {
      XQTP_RETURN_NOT_OK(opts.equiv->CheckCore(*before, *e, *vars));
    }
    return Status::OK();
  };
  auto snapshot = [&]() -> CoreExprPtr {
    return opts.equiv != nullptr ? Clone(*e) : nullptr;
  };
  for (int round = 0; round < opts.max_rounds; ++round) {
    // Compile-time governance checkpoint: a deadline or cancellation set
    // on CompileOptions interrupts the fixpoint between rounds.
    XQTP_RETURN_NOT_OK(exec::GovernorPoll());
    XQTP_FAULT_POINT("core.rewrite.round");
    bool changed = false;
    if (opts.typeswitch_rules) {
      analysis::VerifyScope scope("core rewrite: typeswitch rules");
      CoreExprPtr before = snapshot();
      TypeEnv tenv;
      bool fam = false;
      TypeSimplify(&e, *vars, &tenv, &fam);
      XQTP_RETURN_NOT_OK(checkpoint(&scope, fam, &changed, before));
    }
    if (opts.flwor_rules) {
      analysis::VerifyScope scope("core rewrite: FLWOR rules");
      CoreExprPtr before = snapshot();
      SingletonSet singletons;
      bool fam = false;
      FlworSimplify(&e, &singletons, &fam);
      XQTP_RETURN_NOT_OK(checkpoint(&scope, fam, &changed, before));
    }
    if (opts.ddo_removal) {
      analysis::VerifyScope scope("core rewrite: ddo removal");
      CoreExprPtr before = snapshot();
      OdfEnv oenv;
      bool fam = false;
      StripDdo(&e, {false, false}, *vars, &oenv, &fam);
      XQTP_RETURN_NOT_OK(checkpoint(&scope, fam, &changed, before));
    }
    if (opts.loop_split) {
      analysis::VerifyScope scope("core rewrite: loop split");
      CoreExprPtr before = snapshot();
      bool fam = false;
      LoopSplit(&e, &fam);
      XQTP_RETURN_NOT_OK(checkpoint(&scope, fam, &changed, before));
    }
    if (opts.unsound_ddo_strip_for_testing) {
      analysis::VerifyScope scope("core rewrite: unsound ddo strip (test-only)");
      CoreExprPtr before = snapshot();
      bool fam = false;
      UnsoundStripAllDdo(&e, &fam);
      XQTP_RETURN_NOT_OK(checkpoint(&scope, fam, &changed, before));
    }
    if (!changed) break;
  }
  if (opts.verify) {
    // Annotate the final tree with its derived ODF properties and verify
    // once more: from here on any pass that restructures the Core tree
    // while keeping a stale, too-strong annotation is caught.
    AnnotateOdf(e.get(), *vars);
    analysis::VerifyScope scope("core rewrite: final ODF annotation");
    XQTP_RETURN_NOT_OK(analysis::VerifyCore(*e, *vars));
  }
  return e;
}

}  // namespace xqtp::core
