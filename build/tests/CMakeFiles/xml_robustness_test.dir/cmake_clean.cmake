file(REMOVE_RECURSE
  "CMakeFiles/xml_robustness_test.dir/xml_robustness_test.cc.o"
  "CMakeFiles/xml_robustness_test.dir/xml_robustness_test.cc.o.d"
  "xml_robustness_test"
  "xml_robustness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
