// Section 5.3 of the paper: XPath evaluation in an XQuery context.
// The query (/t1[1])^k for k = 5, 10, 15 on a 50,000-node, depth-15
// document where every element is named t1.
//
// The positional predicates force the plan outside the tree-pattern
// fragment: TupleTreePattern operators stay embedded in maps, so SC and
// TJ pay an index scan per step while NL only touches the first child
// chain. Expected shape: NL ≪ SC < TJ, by orders of magnitude.
#include "bench_common.h"

namespace xqtp::bench {
namespace {

const xml::Document& Doc() {
  return MemberDoc("member_deep", /*node_count=*/50000, /*max_depth=*/15,
                   /*num_tags=*/1);
}

std::string Query(int k) {
  std::string q = "$input";
  for (int i = 0; i < k; ++i) q += "/t1[1]";
  return q;
}

void Register() {
  for (int k : {5, 10, 15}) {
    for (exec::PatternAlgo algo :
         {exec::PatternAlgo::kNLJoin, exec::PatternAlgo::kTwig,
          exec::PatternAlgo::kStaircase}) {
      std::string name = std::string("Selective/k=") + std::to_string(k) +
                         "/" + AlgoTag(algo);
      std::string query = Query(k);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [query, algo](benchmark::State& state) {
            RunQueryBenchmark(state, query, Doc(), algo);
          })
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace xqtp::bench

int main(int argc, char** argv) {
  xqtp::bench::Register();
  return xqtp::bench::BenchMain(argc, argv);
}
