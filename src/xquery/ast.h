// Surface-syntax AST for the supported XQuery fragment:
// FLWOR (for/at/let/where/return), path expressions with predicates,
// general comparisons, and/or, function calls, literals, sequences.
#ifndef XQTP_XQUERY_AST_H_
#define XQTP_XQUERY_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "xdm/axis.h"
#include "xdm/item.h"
#include "xdm/sequence_ops.h"

namespace xqtp::xquery {

enum class ExprKind : uint8_t {
  kVarRef,
  kLiteral,
  kContextItem,  ///< "."
  kRoot,         ///< leading "/" — the document node of the context item
  kPath,         ///< E1/E2 or E1//E2
  kStep,         ///< axis::test[preds]* relative to the context item
  kFilter,       ///< E[preds]* where E is not a step
  kFlwor,
  kFnCall,
  kCompare,
  kArith,        ///< child0 op child1
  kUnion,        ///< child0 | child1
  kIfExpr,       ///< if (child0) then child1 else ret
  kQuantified,   ///< some/every $var in child0 satisfies child1
  kAnd,
  kOr,
  kSequence,     ///< comma expression; empty vector is "()"
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// One FLWOR clause.
struct FlworClause {
  enum class Kind : uint8_t { kFor, kLet, kWhere } kind;
  std::string var;      ///< for/let variable name (no '$')
  std::string pos_var;  ///< "at $pos" variable; empty if absent
  ExprPtr expr;         ///< binding sequence / where condition
};

/// A surface expression node. One struct for all kinds; the active fields
/// are determined by `kind` (documented per kind below).
struct Expr {
  ExprKind kind;

  // kVarRef
  std::string var_name;

  // kLiteral
  xdm::Item literal;

  // kPath: child0 / child1; `double_slash` distinguishes E1//E2.
  // kFilter: child0 = the filtered expression.
  // kCompare / kAnd / kOr: child0, child1.
  ExprPtr child0;
  ExprPtr child1;
  bool double_slash = false;

  // kStep
  Axis axis = Axis::kChild;
  NodeTest test;

  // kStep / kFilter
  std::vector<ExprPtr> predicates;

  // kFlwor
  std::vector<FlworClause> clauses;
  ExprPtr ret;

  // kFnCall (name keeps the written prefix, e.g. "fn:count" or "count")
  std::string fn_name;
  std::vector<ExprPtr> args;

  // kCompare
  xdm::CompareOp cmp_op = xdm::CompareOp::kEq;

  // kArith
  xdm::ArithOp arith_op = xdm::ArithOp::kAdd;

  // kQuantified ("every" if true, else "some"); child0 = binding
  // sequence, child1 = satisfies condition, var_name = the variable.
  bool is_every = false;

  // kIfExpr: child0 = condition, child1 = then, ret = else.

  // kSequence
  std::vector<ExprPtr> items;

  explicit Expr(ExprKind k) : kind(k) {}
};

/// Renders the expression in XQuery syntax (for diagnostics and tests).
std::string ToString(const Expr& e, const StringInterner& interner);

}  // namespace xqtp::xquery

#endif  // XQTP_XQUERY_AST_H_
