#include "engine/plan_cache.h"

#include <utility>

#include "common/fault_injection.h"
#include "engine/engine.h"

namespace xqtp::engine {

PlanCache::PlanCache(const PlanCacheConfig& config)
    : shard_capacity_(config.capacity_bytes > 0
                          ? config.capacity_bytes / kPlanCacheShards
                          : 0),
      shards_(kPlanCacheShards) {}

PlanCache::~PlanCache() = default;

Result<PlanCache::PlanPtr> PlanCache::GetOrCompile(uint64_t key,
                                                   const BuildFn& build) {
  Shard& s = ShardFor(key);
  const uint64_t gen = generation_.load(std::memory_order_acquire);
  std::shared_ptr<InFlight> flight;
  {
    MutexLock lock(&s.mu);
    for (;;) {
      auto it = s.entries.find(key);
      if (it != s.entries.end()) {
        Entry& e = it->second;
        if (e.generation == gen) {
          ++s.hits;
          ++e.hits;
          s.lru.splice(s.lru.begin(), s.lru, e.lru_it);  // touch
          return e.plan;
        }
        // Stale generation: drop lazily and fall through to a miss.
        s.bytes -= e.bytes;
        s.lru.erase(e.lru_it);
        s.entries.erase(it);
      }
      auto in = s.inflight.find(key);
      if (in == s.inflight.end()) break;  // we claim the fill
      // Another thread is compiling this key: wait for its outcome.
      ++s.misses;
      ++s.single_flight_waits;
      std::shared_ptr<InFlight> f = in->second;
      ++f->waiters;
      while (!f->done) f->cv.Wait(s.mu);
      --f->waiters;
      return f->outcome;
    }
    ++s.misses;
    flight = std::make_shared<InFlight>();
    s.inflight[key] = flight;
  }

  // Compile outside the shard lock: fills for different keys proceed in
  // parallel, and hits on other keys of this shard are never blocked by
  // a slow compilation. The fault point sits at the fill boundary so the
  // sweep test drives an injected failure through the single-flight
  // error-publication path.
  Result<PlanPtr> built = [&]() -> Result<PlanPtr> {
    XQTP_FAULT_POINT("engine.plan_cache.fill");
    return build();
  }();

  MutexLock lock(&s.mu);
  ++s.fills;
  if (built.ok()) {
    Insert(s, key, *built, (*built)->MemoryUsage());
  } else {
    ++s.fill_errors;
  }
  flight->outcome = built;
  flight->done = true;
  s.inflight.erase(key);
  flight->cv.NotifyAll();
  return built;
}

void PlanCache::Insert(Shard& s, uint64_t key, PlanPtr plan, int64_t bytes) {
  auto it = s.entries.find(key);
  if (it != s.entries.end()) {
    s.bytes -= it->second.bytes;
    s.lru.erase(it->second.lru_it);
    s.entries.erase(it);
  }
  if (shard_capacity_ <= 0 || bytes > shard_capacity_) return;  // uncacheable
  while (s.bytes + bytes > shard_capacity_ && !s.lru.empty()) {
    uint64_t victim = s.lru.back();
    auto vit = s.entries.find(victim);
    s.bytes -= vit->second.bytes;
    s.entries.erase(vit);
    s.lru.pop_back();
    ++s.evictions;
  }
  s.lru.push_front(key);
  Entry e;
  e.plan = std::move(plan);
  e.bytes = bytes;
  e.generation = generation_.load(std::memory_order_acquire);
  e.lru_it = s.lru.begin();
  s.entries.emplace(key, std::move(e));
  s.bytes += bytes;
}

bool PlanCache::Erase(uint64_t key) {
  Shard& s = ShardFor(key);
  MutexLock lock(&s.mu);
  auto it = s.entries.find(key);
  if (it == s.entries.end()) return false;
  s.bytes -= it->second.bytes;
  s.lru.erase(it->second.lru_it);
  s.entries.erase(it);
  return true;
}

void PlanCache::Clear() {
  for (Shard& s : shards_) {
    MutexLock lock(&s.mu);
    s.entries.clear();
    s.lru.clear();
    s.bytes = 0;
  }
}

void PlanCache::BumpGeneration() {
  generation_.fetch_add(1, std::memory_order_acq_rel);
}

PlanCacheStats PlanCache::Snapshot() const {
  PlanCacheStats out;
  out.capacity_bytes = shard_capacity_ * kPlanCacheShards;
  out.generation = generation_.load(std::memory_order_acquire);
  out.shards.reserve(shards_.size());
  for (const Shard& s : shards_) {
    MutexLock lock(&s.mu);
    out.hits += s.hits;
    out.misses += s.misses;
    out.fills += s.fills;
    out.fill_errors += s.fill_errors;
    out.evictions += s.evictions;
    out.single_flight_waits += s.single_flight_waits;
    out.entries += static_cast<int64_t>(s.entries.size());
    out.bytes += s.bytes;
    out.shards.push_back(
        {static_cast<int64_t>(s.entries.size()), s.bytes});
  }
  return out;
}

PlanCachePeek PlanCache::Peek(uint64_t key) const {
  const Shard& s =
      shards_[key % static_cast<uint64_t>(kPlanCacheShards)];
  MutexLock lock(&s.mu);
  PlanCachePeek out;
  auto it = s.entries.find(key);
  if (it == s.entries.end()) return out;
  out.present = true;
  out.hits = it->second.hits;
  out.bytes = it->second.bytes;
  return out;
}

}  // namespace xqtp::engine
