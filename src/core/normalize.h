// Normalization from the surface AST to XQuery Core, per the W3C Formal
// Semantics rules for path and FLWOR expressions (the paper's first
// compilation phase; Q1a becomes Q1a-n).
//
// The key rules:
//   [E1/E2]  = ddo( let $seq := ddo([E1]) return
//                   let $last := fn:count($seq) return
//                   for $dot at $position in $seq return [E2] )
//   [E1[P]]  =      let $seq := ddo([E1]) return
//                   let $last := fn:count($seq) return
//                   for $dot at $position in $seq
//                   where typeswitch ([P])
//                         case $v as numeric() return $position = $v
//                         default $v return fn:boolean($v)
//                   return $dot
//   [E1//E2] = [E1/descendant::E2]            when E2 is a name step with
//                                             no possibly-positional
//                                             predicate (the paper's
//                                             footnote simplification)
//            = [E1/descendant-or-self::node()/E2]  otherwise
// plus the standard FLWOR clause-by-clause rules.
#ifndef XQTP_CORE_NORMALIZE_H_
#define XQTP_CORE_NORMALIZE_H_

#include "common/status.h"
#include "core/ast.h"
#include "xquery/ast.h"

namespace xqtp::core {

/// Normalizes a surface expression. Free variables of the query are
/// registered as globals in `vars`.
[[nodiscard]]
Result<CoreExprPtr> Normalize(const xquery::Expr& e, VarTable* vars);

}  // namespace xqtp::core

#endif  // XQTP_CORE_NORMALIZE_H_
